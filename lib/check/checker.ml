module Obs = Locus_core.Obs

type violation =
  | Dirty_read of {
      reader : Txid.t;
      writer : Owner.t;
      fid : File_id.t;
      range : Byte_range.t;
      at : int;
    }
  | Cycle of Txid.t list
  | Stale_read of {
      reader : Txid.t;
      fid : File_id.t;
      range : Byte_range.t;
      version : int;
      at : int;
    }
  | Fenced_grant of {
      fid : File_id.t;
      site : int;
      owner_site : int;
      epoch : int;
      at : int;
    }
  | Dup_apply of {
      client : int;
      seq : int;
      site : int;
      label : string;
      at : int;
    }

type classified = { violation : violation; permitted : bool }

type report = {
  committed : Txid.t list;
  aborted : Txid.t list;
  unresolved : Txid.t list;
  reads_checked : int;
  edges : (Txid.t * Txid.t) list;
  violations : classified list;
}

(* One recorded write, with a status that evolves as the chronological
   scan passes the owner's commit / abort events. *)
type wstatus = Pending | Wcommitted | Waborted

type wrec = {
  w_owner : Owner.t;
  w_range : Byte_range.t;
  w_relaxed : bool;
  w_data : string;  (* the written bytes, for one-copy staleness checks *)
  mutable w_status : wstatus;
}

(* A transaction's data access, kept for conflict-graph construction. *)
type op = {
  o_idx : int;
  o_txid : Txid.t;
  o_write : bool;
  o_range : Byte_range.t;
  o_relaxed : bool;
}

type dirty_candidate = {
  d_reader : Txid.t;
  d_reader_relaxed : bool;
  d_writer : Owner.t;
  d_writer_relaxed : bool;
  d_fid : File_id.t;
  d_range : Byte_range.t;
  d_at : int;
}

(* A replica read whose data matches neither the live overlay nor the
   committed-only overlay of the write history (or that missed the
   reader's own pending write): the copy served a stale version. *)
type stale_candidate = {
  s_reader : Txid.t;
  s_reader_relaxed : bool;
  s_degraded : bool;
  s_fid : File_id.t;
  s_range : Byte_range.t;
  s_version : int;
  s_at : int;
}

module Tx_tbl = Hashtbl
module Edge_key = struct
  type t = Txid.t * Txid.t
end

(* Tarjan's strongly-connected components over txid nodes. *)
let sccs ~nodes ~succ =
  let index = Tx_tbl.create 16 in
  let lowlink = Tx_tbl.create 16 in
  let on_stack = Tx_tbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Tx_tbl.replace index v !counter;
    Tx_tbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Tx_tbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Tx_tbl.mem index w) then begin
          strongconnect w;
          Tx_tbl.replace lowlink v
            (min (Tx_tbl.find lowlink v) (Tx_tbl.find lowlink w))
        end
        else if Tx_tbl.find_opt on_stack w = Some true then
          Tx_tbl.replace lowlink v
            (min (Tx_tbl.find lowlink v) (Tx_tbl.find index w)))
      (succ v);
    if Tx_tbl.find lowlink v = Tx_tbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Tx_tbl.replace on_stack w false;
            if Txid.equal w v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Tx_tbl.mem index v) then strongconnect v) nodes;
  !out

let check history =
  let events = Array.of_list (History.events history) in
  let n = Array.length events in
  (* Transaction bookkeeping: first Begin / first outcome win, so the
     duplicate outcome events that recovery replay can emit are harmless. *)
  let begun : (Txid.t, int) Tx_tbl.t = Tx_tbl.create 16 in
  let outcomes : (Txid.t, [ `Committed | `Aborted ] * int) Tx_tbl.t =
    Tx_tbl.create 16
  in
  (* Active §3.4 non-transaction locks, per (owner, file). *)
  let nt : (Owner.t * File_id.t, Range_set.t ref) Tx_tbl.t =
    Tx_tbl.create 16
  in
  (* Writes per file, newest first; also indexed by owner and by
     (owner, file) so outcome events can update statuses. *)
  let writes : (File_id.t, wrec list ref) Tx_tbl.t = Tx_tbl.create 16 in
  let by_owner : (Owner.t, wrec list ref) Tx_tbl.t = Tx_tbl.create 16 in
  let by_owner_file : (Owner.t * File_id.t, wrec list ref) Tx_tbl.t =
    Tx_tbl.create 16
  in
  let ops : (File_id.t, op list ref) Tx_tbl.t = Tx_tbl.create 16 in
  let dirty = ref [] in
  let stale = ref [] in
  (* Epoch-fence oracle (locus_shard): [Migrate] events name, per fid,
     the one site allowed to grant locks from then on (highest epoch
     wins). Grants before a fid's first migration are unchecked — the
     epoch-0 owner is not observable from the history alone. *)
  let shard_owner : (File_id.t, int * int) Tx_tbl.t = Tx_tbl.create 8 in
  let fenced = ref [] in
  (* Exactly-once oracle (locus_chaos): a rid-tagged request may execute
     its handler at most once per (client incarnation, server incarnation)
     pair — the reply cache must absorb every further wire copy. A second
     [Rpc_exec] with the same key is a double application (a merge counted
     twice, a file created twice, ...). The server-incarnation component
     makes post-crash re-execution benign: the crash wiped the first
     execution's volatile effects along with the cache. *)
  let rpc_execs : (int * int * int * int * int, unit) Tx_tbl.t =
    Tx_tbl.create 64
  in
  let dup_applies = ref [] in
  let reads_checked = ref 0 in
  let push tbl key v =
    match Tx_tbl.find_opt tbl key with
    | Some r -> r := v :: !r
    | None -> Tx_tbl.replace tbl key (ref [ v ])
  in
  let nt_set owner fid =
    match Tx_tbl.find_opt nt (owner, fid) with
    | Some r -> !r
    | None -> Range_set.empty
  in
  let relaxed owner fid range =
    match owner with
    | Owner.Process _ -> true
    | Owner.Transaction _ -> Range_set.overlaps range (nt_set owner fid)
  in
  let settle status = function
    | Owner.Transaction _ as o -> (
        (* all files of the owner settle at the transaction outcome *)
        match Tx_tbl.find_opt by_owner o with
        | None -> ()
        | Some l ->
            List.iter
              (fun w -> if w.w_status = Pending then w.w_status <- status)
              !l)
    | Owner.Process _ -> ()
  in
  let settle_file status owner fid =
    match Tx_tbl.find_opt by_owner_file (owner, fid) with
    | None -> ()
    | Some l ->
        List.iter
          (fun w -> if w.w_status = Pending then w.w_status <- status)
          !l
  in
  let record_op i owner fid range ~write ~relaxed =
    match owner with
    | Owner.Transaction txid ->
        push ops fid
          { o_idx = i; o_txid = txid; o_write = write; o_range = range;
            o_relaxed = relaxed }
    | Owner.Process _ -> ()
  in
  (* Rebuild what the read range should contain under an overlay of the
     writes recorded so far (newest shadowing oldest), keeping only the
     writes [keep] selects. Bytes no kept write ever covered read as
     zeros, matching the filestore's hole semantics. *)
  let expected_bytes wl ~range ~keep =
    let lo = Byte_range.lo range and len = Byte_range.len range in
    let out = Bytes.make len '\000' in
    let filled = Array.make len false in
    List.iter
      (fun w ->
        if keep w.w_status then begin
          let wlo = Byte_range.lo w.w_range in
          let from = max lo wlo and upto = min (lo + len) (Byte_range.hi w.w_range) in
          for b = from to upto - 1 do
            if not filled.(b - lo) then begin
              filled.(b - lo) <- true;
              if b - wlo < String.length w.w_data then
                Bytes.set out (b - lo) w.w_data.[b - wlo]
            end
          done
        end)
      wl;
    Bytes.to_string out
  in
  (* Walk the file's writes newest first, exactly mirroring the
     filestore's overlay: live (committed or still-pending) writes shadow
     older data. Flag every pending non-own write the read observed. *)
  let observe_pending ~at ~reader ~reader_relaxed ~fid ~range wl =
    let owner = Owner.Transaction reader in
    let remaining = ref (Range_set.of_range range) in
    List.iter
      (fun w ->
        if (not (Range_set.is_empty !remaining)) && w.w_status <> Waborted
        then begin
          let cover =
            Range_set.inter !remaining (Range_set.of_range w.w_range)
          in
          if not (Range_set.is_empty cover) then begin
            remaining := Range_set.diff !remaining cover;
            if w.w_status = Pending && not (Owner.equal w.w_owner owner) then
              dirty :=
                { d_reader = reader; d_reader_relaxed = reader_relaxed;
                  d_writer = w.w_owner; d_writer_relaxed = w.w_relaxed;
                  d_fid = fid;
                  d_range = List.hd (Range_set.ranges cover);
                  d_at = at }
                :: !dirty
          end
        end)
      wl
  in
  for i = 0 to n - 1 do
    let { Obs.at; site; ev } = events.(i) in
    match ev with
    | Obs.Begin { txid; _ } ->
        if not (Tx_tbl.mem begun txid) then Tx_tbl.replace begun txid i
    | Obs.Commit { txid } ->
        if not (Tx_tbl.mem outcomes txid) then begin
          Tx_tbl.replace outcomes txid (`Committed, i);
          settle Wcommitted (Owner.Transaction txid)
        end
    | Obs.Abort { txid } ->
        if not (Tx_tbl.mem outcomes txid) then begin
          Tx_tbl.replace outcomes txid (`Aborted, i);
          settle Waborted (Owner.Transaction txid)
        end
    | Obs.File_commit { owner; fid } -> settle_file Wcommitted owner fid
    | Obs.File_abort { owner; fid } -> settle_file Waborted owner fid
    | Obs.Lock { owner; fid; range; non_transaction; _ } ->
        (match Tx_tbl.find_opt shard_owner fid with
        | Some (osite, epoch) when osite <> site ->
            fenced :=
              { violation =
                  Fenced_grant { fid; site; owner_site = osite; epoch; at };
                permitted = false }
              :: !fenced
        | Some _ | None -> ());
        if non_transaction then begin
          (match Tx_tbl.find_opt nt (owner, fid) with
          | Some r -> r := Range_set.add range !r
          | None -> Tx_tbl.replace nt (owner, fid) (ref (Range_set.of_range range)))
        end
    | Obs.Unlock { owner; fid; range; _ } -> (
        match Tx_tbl.find_opt nt (owner, fid) with
        | Some r -> r := Range_set.remove range !r
        | None -> ())
    | Obs.Write { owner; fid; range; data; _ } ->
        let rlx = relaxed owner fid range in
        let w =
          { w_owner = owner; w_range = range; w_relaxed = rlx;
            w_data = data; w_status = Pending }
        in
        push writes fid w;
        push by_owner owner w;
        push by_owner_file (owner, fid) w;
        record_op i owner fid range ~write:true ~relaxed:rlx
    | Obs.Read { owner; fid; range; _ } ->
        incr reads_checked;
        let rlx = relaxed owner fid range in
        record_op i owner fid range ~write:false ~relaxed:rlx;
        (* Who does this read observe? Aborted writes were discarded;
           everything else shadows the committed base image. *)
        (match owner with
        | Owner.Process _ -> ()
        | Owner.Transaction reader ->
            let wl =
              match Tx_tbl.find_opt writes fid with Some r -> !r | None -> []
            in
            observe_pending ~at ~reader ~reader_relaxed:rlx ~fid ~range wl)
    | Obs.Replica_read { access = { owner; fid; range; data; _ }; version;
                         degraded } ->
        incr reads_checked;
        let rlx = relaxed owner fid range in
        record_op i owner fid range ~write:false ~relaxed:rlx;
        (* One-copy serializability: the bytes a replicated volume served
           must match either the live overlay (what the primary would
           serve) or the committed-only overlay (what a fresh secondary
           serves) — anything else means the copy missed a committed
           update. A committed-only match is no excuse when the reader
           itself has a pending overlapping write: that would be a lost
           read-your-writes. *)
        (match owner with
        | Owner.Process _ -> ()
        | Owner.Transaction reader ->
            let wl =
              match Tx_tbl.find_opt writes fid with Some r -> !r | None -> []
            in
            let live = expected_bytes wl ~range ~keep:(fun s -> s <> Waborted) in
            let committed_only =
              expected_bytes wl ~range ~keep:(fun s -> s = Wcommitted)
            in
            if String.equal data live then begin
              if not (String.equal data committed_only) then
                (* The read observed someone's pending bytes: exactly the
                   dirty-read analysis of an unreplicated read. *)
                observe_pending ~at ~reader ~reader_relaxed:rlx ~fid ~range wl
            end
            else begin
              let own_pending =
                List.exists
                  (fun w ->
                    Owner.equal w.w_owner owner
                    && w.w_status = Pending
                    && Byte_range.overlaps w.w_range range)
                  wl
              in
              if String.equal data committed_only && not own_pending then ()
              else
                stale :=
                  { s_reader = reader; s_reader_relaxed = rlx;
                    s_degraded = degraded; s_fid = fid; s_range = range;
                    s_version = version; s_at = at }
                  :: !stale
            end)
    | Obs.Migrate { fid; from_site = _; to_site; epoch } -> (
        (* Emission order is causal, but a straggler install can still
           surface after a re-home raced past it: highest epoch wins. *)
        match Tx_tbl.find_opt shard_owner fid with
        | Some (_, e) when epoch < e -> ()
        | Some _ | None -> Tx_tbl.replace shard_owner fid (to_site, epoch))
    | Obs.Rpc_exec { client; inc; seq; site_inc; label } ->
        let key = (client, inc, seq, site, site_inc) in
        if Tx_tbl.mem rpc_execs key then
          dup_applies :=
            { violation = Dup_apply { client; seq; site; label; at };
              permitted = false }
            :: !dup_applies
        else Tx_tbl.replace rpc_execs key ()
    | Obs.Propagate _ | Obs.Reconcile _ | Obs.Failover _ | Obs.Net_fault _
    | Obs.Alarm _ ->
        (* Replication housekeeping / injected chaos / health watchdog
           events: not data accesses. The health oracles read Alarm
           records straight from the trace, not through this graph. *)
        ()
  done;
  let committed, aborted =
    Tx_tbl.fold
      (fun txid _ (c, a) ->
        match Tx_tbl.find_opt outcomes txid with
        | Some (`Committed, _) -> (txid :: c, a)
        | Some (`Aborted, _) -> (c, txid :: a)
        | None -> (c, a))
      begun ([], [])
  in
  let unresolved =
    Tx_tbl.fold
      (fun txid _ acc ->
        if Tx_tbl.mem outcomes txid then acc else txid :: acc)
      begun []
  in
  let committed = List.sort Txid.compare committed in
  let aborted = List.sort Txid.compare aborted in
  let unresolved = List.sort Txid.compare unresolved in
  let is_committed txid =
    match Tx_tbl.find_opt outcomes txid with
    | Some (`Committed, _) -> true
    | _ -> false
  in
  (* Dirty reads: only reads by transactions that went on to commit are
     violations — an aborted reader's results were discarded with it. *)
  let dirty_violations =
    List.rev_map
      (fun d ->
        let writer_process =
          match d.d_writer with Owner.Process _ -> true | _ -> false
        in
        { violation =
            Dirty_read
              { reader = d.d_reader; writer = d.d_writer; fid = d.d_fid;
                range = d.d_range; at = d.d_at };
          permitted =
            d.d_reader_relaxed || d.d_writer_relaxed || writer_process })
      (List.filter (fun d -> is_committed d.d_reader) !dirty)
  in
  (* Stale replica reads: §3.4-relaxed readers tolerate them, and a
     degraded copy answering because the primary is unreachable is the
     deliberate availability/consistency trade — permitted, flagged. *)
  let stale_violations =
    List.rev_map
      (fun s ->
        { violation =
            Stale_read
              { reader = s.s_reader; fid = s.s_fid; range = s.s_range;
                version = s.s_version; at = s.s_at };
          permitted = s.s_reader_relaxed || s.s_degraded })
      (List.filter (fun s -> is_committed s.s_reader) !stale)
  in
  (* Conflict graph over committed transactions: an edge a -> b for every
     pair of overlapping accesses to the same file, at least one a write,
     with a's access first. An edge is strict unless every generating pair
     involved a §3.4-relaxed access. *)
  let edge_tbl : (Edge_key.t, bool ref) Tx_tbl.t = Tx_tbl.create 16 in
  Tx_tbl.iter
    (fun _fid opsr ->
      let arr = Array.of_list !opsr in
      Array.sort (fun a b -> compare a.o_idx b.o_idx) arr;
      let m = Array.length arr in
      for x = 0 to m - 1 do
        for y = x + 1 to m - 1 do
          let a = arr.(x) and b = arr.(y) in
          if (a.o_write || b.o_write)
             && (not (Txid.equal a.o_txid b.o_txid))
             && Byte_range.overlaps a.o_range b.o_range
             && is_committed a.o_txid && is_committed b.o_txid
          then begin
            let strict = (not a.o_relaxed) && not b.o_relaxed in
            match Tx_tbl.find_opt edge_tbl (a.o_txid, b.o_txid) with
            | Some s -> s := !s || strict
            | None -> Tx_tbl.replace edge_tbl (a.o_txid, b.o_txid) (ref strict)
          end
        done
      done)
    ops;
  let edges = Tx_tbl.fold (fun k _ acc -> k :: acc) edge_tbl [] in
  let succ_of pred v =
    Tx_tbl.fold
      (fun (a, b) s acc -> if Txid.equal a v && pred !s then b :: acc else acc)
      edge_tbl []
  in
  let cycles_of pred =
    sccs ~nodes:committed ~succ:(succ_of pred)
    |> List.filter (fun scc -> List.length scc > 1)
    |> List.map (List.sort Txid.compare)
  in
  let strict_cycles = cycles_of (fun s -> s) in
  let all_cycles = cycles_of (fun _ -> true) in
  let cycle_violations =
    List.map (fun c -> { violation = Cycle c; permitted = false })
      strict_cycles
    @ (all_cycles
      |> List.filter (fun c ->
             not (List.exists (fun s -> List.equal Txid.equal s c) strict_cycles))
      |> List.map (fun c -> { violation = Cycle c; permitted = true }))
  in
  { committed; aborted; unresolved;
    reads_checked = !reads_checked;
    edges;
    violations =
      dirty_violations @ stale_violations @ List.rev !fenced
      @ List.rev !dup_applies @ cycle_violations }

let unpermitted r = List.filter (fun c -> not c.permitted) r.violations
let permitted r = List.filter (fun c -> c.permitted) r.violations
let ok r = unpermitted r = []

let pp_violation ppf = function
  | Dirty_read { reader; writer; fid; range; at } ->
      Fmt.pf ppf "dirty read: %a read %a %a from uncommitted %a at t=%d"
        Txid.pp reader File_id.pp fid Byte_range.pp range Owner.pp writer at
  | Cycle txids ->
      Fmt.pf ppf "conflict cycle: %a" (Fmt.list ~sep:Fmt.sp Txid.pp) txids
  | Stale_read { reader; fid; range; version; at } ->
      Fmt.pf ppf
        "stale replica read: %a read %a %a (copy version %d) missing \
         committed data at t=%d"
        Txid.pp reader File_id.pp fid Byte_range.pp range version at
  | Fenced_grant { fid; site; owner_site; epoch; at } ->
      Fmt.pf ppf
        "fenced grant: site%d granted a lock on %a but the e%d migration \
         made site%d its lock manager (t=%d)"
        site File_id.pp fid epoch owner_site at
  | Dup_apply { client; seq; site; label; at } ->
      Fmt.pf ppf
        "duplicate apply: site%d executed %s from client site%d (seq %d) \
         twice in one incarnation (t=%d)"
        site label client seq at

let pp_classified ppf c =
  Fmt.pf ppf "[%s] %a"
    (if c.permitted then "permitted" else "VIOLATION")
    pp_violation c.violation

let pp ppf r =
  Fmt.pf ppf
    "@[<v>committed=%d aborted=%d unresolved=%d reads=%d edges=%d@,%a@]"
    (List.length r.committed) (List.length r.aborted)
    (List.length r.unresolved) r.reads_checked (List.length r.edges)
    (Fmt.list ~sep:Fmt.cut pp_classified)
    r.violations
