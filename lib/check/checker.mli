(** Conflict-serializability checker over a recorded {!History}.

    The checker rebuilds, from the observation stream, exactly the
    guarantees §3 of the paper claims for transactions:

    - committed transactions form an acyclic conflict graph (edges are
      overlapping same-file accesses with at least one write, ordered by
      global emission order — WR, WW and RW conflicts; lost updates show
      up as RW/WW cycles);
    - a committed transaction never observes another owner's uncommitted
      data (no dirty reads).

    Accesses made outside the transaction discipline are classified as
    {e permitted} violations rather than errors, mirroring §3.4's
    deliberate serializability exceptions: any access by a
    [Owner.Process] (non-transaction work commits per file, visible
    immediately), and any access a transaction makes under a lock taken
    with [non_transaction:true] (e.g. directory updates, where long-held
    locks would throttle the whole system). *)

type violation =
  | Dirty_read of {
      reader : Txid.t;
      writer : Owner.t;
      fid : File_id.t;
      range : Byte_range.t;
      at : int;  (** virtual time of the read *)
    }
      (** a committed transaction read bytes from a write that was not
          yet committed (or never committed) at the time of the read *)
  | Cycle of Txid.t list
      (** committed transactions forming a conflict-graph cycle *)
  | Stale_read of {
      reader : Txid.t;
      fid : File_id.t;
      range : Byte_range.t;
      version : int;  (** the serving copy's committed version *)
      at : int;
    }
      (** one-copy serializability: a replicated volume served bytes that
          match neither the live overlay nor the newest committed state
          of the write history — the copy missed a committed update (or
          the reader's own pending write). Permitted when the reader was
          §3.4-relaxed or the copy was serving degraded (failover with
          the primary unreachable). *)
  | Fenced_grant of {
      fid : File_id.t;
      site : int;  (** the site that granted the lock *)
      owner_site : int;  (** the site the migration history designates *)
      epoch : int;  (** ownership epoch in force at the grant *)
      at : int;
    }
      (** epoch-fence oracle (locus_shard): a lock on [fid] was granted
          at a site other than the one the latest ownership migration
          (highest epoch with [at] ≤ grant time) installed as the fid's
          lock manager. A correct implementation fences every such
          stale-owner grant, so this is never permitted; it fires under
          [--break-shard], which suppresses the old owner's stand-down. *)
  | Dup_apply of {
      client : int;  (** the request's originating site *)
      seq : int;  (** the client-incarnation-local request sequence *)
      site : int;  (** the server that executed twice *)
      label : string;  (** message label, e.g. ["merge"] *)
      at : int;  (** virtual time of the second execution *)
    }
      (** exactly-once oracle (locus_chaos): a server executed the same
          rid-tagged request twice within one (client incarnation, server
          incarnation) pair — the reply cache failed to absorb a retry or
          a duplicated wire copy, so a non-idempotent effect was applied
          twice. Never permitted; it fires under [--break-dedup], which
          bypasses the reply cache. *)

type classified = { violation : violation; permitted : bool }

type report = {
  committed : Txid.t list;
  aborted : Txid.t list;
  unresolved : Txid.t list;
      (** begun but neither committed nor aborted (e.g. lost in a crash
          without recovery) — excluded from the graph *)
  reads_checked : int;
  edges : (Txid.t * Txid.t) list;  (** deduplicated conflict edges *)
  violations : classified list;
}

val check : History.t -> report

val ok : report -> bool
(** No {e unpermitted} violations (permitted §3.4 ones may be present). *)

val unpermitted : report -> classified list
val permitted : report -> classified list

val pp_violation : violation Fmt.t
val pp_classified : classified Fmt.t
val pp : report Fmt.t
