exception Conflicting_write of File_id.t * Owner.t * Owner.t

(* Per-owner modified ranges are kept page-relative: the differencing
   commit and abort both operate a page at a time. *)
type page_state = {
  index : int;
  mutable current : Bytes.t;
  mutable mods : (Owner.t * Range_set.t) list;
}

type open_file = {
  fid : File_id.t;
  vol : Volume.t;
  mutable inode : Volume.inode;
  pstates : (int, page_state) Hashtbl.t;
  mutable extents : (Owner.t * int) list;
  mutable prepared : Intentions.t list;
  mutable refcount : int;
}

(* Commit and abort application for one file must be serialized: the
   read-merge-write-inode sequence yields at every disk I/O, and two
   interleaved applications would clobber each other's inode update. *)
type gate = { mutable held : bool; mutable queue : unit Engine.Ivar.t list }

type t = {
  engine : Engine.t;
  cache : Cache.t;
  volumes : (int, Volume.t) Hashtbl.t;
  files : (File_id.t, open_file) Hashtbl.t;
  gates : (File_id.t, gate) Hashtbl.t;
}

let create engine ~cache =
  {
    engine;
    cache;
    volumes = Hashtbl.create 8;
    files = Hashtbl.create 32;
    gates = Hashtbl.create 16;
  }

let gate_release t g =
  match g.queue with
  | [] -> g.held <- false
  | iv :: rest ->
    g.queue <- rest;
    (* Ownership passes directly to the next waiter. *)
    Engine.fill t.engine iv ()

let with_gate t fid fn =
  let g =
    match Hashtbl.find_opt t.gates fid with
    | Some g -> g
    | None ->
      let g = { held = false; queue = [] } in
      Hashtbl.replace t.gates fid g;
      g
  in
  (if g.held then begin
     let iv = Engine.Ivar.create () in
     g.queue <- g.queue @ [ iv ];
     try Engine.await iv
     with e ->
       (* The await only resumes when ownership was handed to us; if we
          are unwinding (our fiber was killed while queued), pass the
          gate straight on or it wedges every later commit on the file. *)
       gate_release t g;
       raise e
   end
   else g.held <- true);
  Fun.protect fn ~finally:(fun () -> gate_release t g)

let engine t = t.engine

let mount t vol =
  if Hashtbl.mem t.volumes (Volume.vid vol) then
    invalid_arg "Filestore.mount: volume already mounted";
  Hashtbl.replace t.volumes (Volume.vid vol) vol

let volume t ~vid = Hashtbl.find_opt t.volumes vid
let volumes t = Hashtbl.fold (fun _ v acc -> v :: acc) t.volumes []

let vol_exn t fid =
  match Hashtbl.find_opt t.volumes fid.File_id.vid with
  | Some v -> v
  | None -> invalid_arg "Filestore: volume not mounted at this site"

let file_exists t fid =
  match volume t ~vid:fid.File_id.vid with
  | None -> false
  | Some vol -> Volume.inode_exists vol fid.File_id.ino

let is_open t fid = Hashtbl.mem t.files fid

let get_exn t fid =
  match Hashtbl.find_opt t.files fid with
  | Some f -> f
  | None -> invalid_arg "Filestore: file not open"

let costs t = Engine.costs t.engine
let stats t = Engine.stats t.engine

(* Committed slot of logical page [index], -1 for holes / beyond EOF. *)
let committed_slot inode index =
  if index < Array.length inode.Volume.pages then inode.Volume.pages.(index) else -1

let blank vol = Bytes.make (Volume.page_size vol) '\000'

let committed_page_content t vol inode index =
  match committed_slot inode index with
  | -1 -> blank vol
  | slot -> Cache.read t.cache vol slot

let create_file t ~vid =
  match volume t ~vid with
  | None -> invalid_arg "Filestore.create_file: volume not mounted"
  | Some vol ->
    let ino = Volume.alloc_inode vol in
    Volume.write_inode vol { Volume.ino; size = 0; pages = [||]; version = 0 };
    File_id.make ~vid ~ino

let open_file t fid =
  match Hashtbl.find_opt t.files fid with
  | Some f -> f.refcount <- f.refcount + 1
  | None -> (
    let vol = vol_exn t fid in
    if not (Volume.inode_exists vol fid.File_id.ino) then raise Not_found;
    let inode = Volume.read_inode vol fid.File_id.ino in
    (* The inode read yields: a concurrent opener may have installed the
       in-core state meanwhile. Never clobber it — that would lose its
       volatile modifications. *)
    match Hashtbl.find_opt t.files fid with
    | Some f -> f.refcount <- f.refcount + 1
    | None ->
      Hashtbl.replace t.files fid
        {
          fid;
          vol;
          inode;
          pstates = Hashtbl.create 8;
          extents = [];
          prepared = [];
          refcount = 1;
        })

let has_uncommitted_of f =
  f.prepared <> []
  || Hashtbl.fold (fun _ ps acc -> acc || ps.mods <> []) f.pstates false

let has_uncommitted t fid =
  match Hashtbl.find_opt t.files fid with
  | None -> false
  | Some f -> has_uncommitted_of f

let close_file t fid =
  match Hashtbl.find_opt t.files fid with
  | None -> ()
  | Some f ->
    f.refcount <- max 0 (f.refcount - 1);
    if f.refcount = 0 && not (has_uncommitted_of f) then Hashtbl.remove t.files fid

let committed_size t fid =
  match Hashtbl.find_opt t.files fid with
  | Some f -> f.inode.Volume.size
  | None ->
    let vol = vol_exn t fid in
    (Volume.read_inode_nosim vol fid.File_id.ino).Volume.size

let size t fid =
  match Hashtbl.find_opt t.files fid with
  | None -> committed_size t fid
  | Some f ->
    List.fold_left (fun acc (_, e) -> max acc e) f.inode.Volume.size f.extents

(* Iterate the page-relative pieces of a file-relative byte range. *)
let iter_pages ~page_size ~pos ~len f =
  if len > 0 then begin
    let first = pos / page_size and last = (pos + len - 1) / page_size in
    for index = first to last do
      let page_base = index * page_size in
      let lo = max pos page_base - page_base in
      let hi = min (pos + len) (page_base + page_size) - page_base in
      f ~index ~page_lo:lo ~page_hi:hi ~buf_off:(page_base + lo - pos)
    done
  end

let ensure_pstate t f index =
  match Hashtbl.find_opt f.pstates index with
  | Some ps -> ps
  | None ->
    let current = committed_page_content t f.vol f.inode index in
    let ps = { index; current; mods = [] } in
    Hashtbl.replace f.pstates index ps;
    ps

let read t fid ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Filestore.read: negative pos/len";
  let f = get_exn t fid in
  let page_size = Volume.page_size f.vol in
  Engine.consume t.engine ~instr:((costs t).Costs.rw_base_instr + Costs.copy_instr (costs t) ~bytes:len);
  let out = Bytes.make len '\000' in
  iter_pages ~page_size ~pos ~len (fun ~index ~page_lo ~page_hi ~buf_off ->
      let content =
        match Hashtbl.find_opt f.pstates index with
        | Some ps -> ps.current
        | None ->
          if committed_slot f.inode index = -1 then blank f.vol
          else committed_page_content t f.vol f.inode index
      in
      Bytes.blit content page_lo out buf_off (page_hi - page_lo));
  out

let read_committed t fid ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Filestore.read_committed: negative pos/len";
  let f = get_exn t fid in
  let page_size = Volume.page_size f.vol in
  let out = Bytes.make len '\000' in
  iter_pages ~page_size ~pos ~len (fun ~index ~page_lo ~page_hi ~buf_off ->
      let content = committed_page_content t f.vol f.inode index in
      Bytes.blit content page_lo out buf_off (page_hi - page_lo));
  out

(* Committed state accessors that work whether or not the file is open
   in-core — replica propagation and reconciliation run at storage sites
   where no client ever opened the file. *)
let committed_inode_opt t fid =
  match Hashtbl.find_opt t.files fid with
  | Some f -> Some f.inode
  | None ->
    let vol = vol_exn t fid in
    if Volume.inode_exists vol fid.File_id.ino then
      Some (Volume.read_inode_nosim vol fid.File_id.ino)
    else None

let committed_version t fid =
  match committed_inode_opt t fid with
  | Some i -> i.Volume.version
  | None -> 0

let committed_page_indices t fid =
  match committed_inode_opt t fid with
  | None -> []
  | Some inode ->
    let acc = ref [] in
    Array.iteri
      (fun i slot -> if slot <> -1 then acc := i :: !acc)
      inode.Volume.pages;
    List.rev !acc

let committed_page t fid index =
  match committed_inode_opt t fid with
  | None -> None
  | Some inode -> (
    match committed_slot inode index with
    | -1 -> None
    | slot -> Some (Cache.read t.cache (vol_exn t fid) slot))

let read_committed_any t fid ~pos ~len =
  if pos < 0 || len < 0 then
    invalid_arg "Filestore.read_committed_any: negative pos/len";
  let vol = vol_exn t fid in
  let inode =
    match committed_inode_opt t fid with
    | Some i -> i
    | None -> raise Not_found
  in
  let page_size = Volume.page_size vol in
  Engine.consume t.engine
    ~instr:((costs t).Costs.rw_base_instr + Costs.copy_instr (costs t) ~bytes:len);
  let out = Bytes.make len '\000' in
  iter_pages ~page_size ~pos ~len (fun ~index ~page_lo ~page_hi ~buf_off ->
      let content = committed_page_content t vol inode index in
      Bytes.blit content page_lo out buf_off (page_hi - page_lo));
  out

let owner_ranges ps owner =
  match List.assoc_opt owner (List.map (fun (o, r) -> (o, r)) ps.mods) with
  | Some r -> r
  | None -> Range_set.empty

let set_owner_ranges ps owner rs =
  let rest = List.filter (fun (o, _) -> not (Owner.equal o owner)) ps.mods in
  ps.mods <- (if Range_set.is_empty rs then rest else (owner, rs) :: rest)

let write t fid ~owner ~pos data =
  if pos < 0 then invalid_arg "Filestore.write: negative pos";
  let len = Bytes.length data in
  if len > 0 then begin
    let f = get_exn t fid in
    let page_size = Volume.page_size f.vol in
    Engine.consume t.engine
      ~instr:((costs t).Costs.rw_base_instr + Costs.copy_instr (costs t) ~bytes:len);
    (* First pass: policy check — different owners may never have
       overlapping uncommitted bytes on a page (footnote 6). *)
    iter_pages ~page_size ~pos ~len (fun ~index ~page_lo ~page_hi ~buf_off:_ ->
        match Hashtbl.find_opt f.pstates index with
        | None -> ()
        | Some ps ->
          let r = Byte_range.v ~lo:page_lo ~hi:page_hi in
          List.iter
            (fun (o, rs) ->
              if (not (Owner.equal o owner)) && Range_set.overlaps r rs then
                raise (Conflicting_write (fid, owner, o)))
            ps.mods);
    iter_pages ~page_size ~pos ~len (fun ~index ~page_lo ~page_hi ~buf_off ->
        let ps = ensure_pstate t f index in
        Bytes.blit data buf_off ps.current page_lo (page_hi - page_lo);
        let r = Byte_range.v ~lo:page_lo ~hi:page_hi in
        set_owner_ranges ps owner (Range_set.add r (owner_ranges ps owner)));
    let extent = pos + len in
    let prev =
      match List.assoc_opt owner (List.map (fun (o, e) -> (o, e)) f.extents) with
      | Some e -> e
      | None -> 0
    in
    f.extents <-
      (owner, max prev extent)
      :: List.filter (fun (o, _) -> not (Owner.equal o owner)) f.extents
  end

let modified_by t fid owner =
  match Hashtbl.find_opt t.files fid with
  | None -> []
  | Some f ->
    let page_size = Volume.page_size f.vol in
    Hashtbl.fold
      (fun index ps acc ->
        let base = index * page_size in
        Range_set.fold
          (fun r acc ->
            Byte_range.v ~lo:(base + Byte_range.lo r) ~hi:(base + Byte_range.hi r)
            :: acc)
          (owner_ranges ps owner) acc)
      f.pstates []
    |> List.sort Byte_range.compare

let uncommitted_overlapping t fid range =
  match Hashtbl.find_opt t.files fid with
  | None -> []
  | Some f ->
    let page_size = Volume.page_size f.vol in
    let owners =
      Hashtbl.fold
        (fun index ps acc ->
          let base = index * page_size in
          let page_range =
            Byte_range.inter range
              (Byte_range.v ~lo:base ~hi:(base + page_size))
          in
          match page_range with
          | None -> acc
          | Some pr ->
            let rel =
              Byte_range.v ~lo:(Byte_range.lo pr - base) ~hi:(Byte_range.hi pr - base)
            in
            List.fold_left
              (fun acc (o, rs) ->
                if Range_set.overlaps rel rs then Owner.Set.add o acc else acc)
              acc ps.mods)
        f.pstates Owner.Set.empty
    in
    Owner.Set.elements owners

let adopt t fid ~range ~new_owner =
  match Hashtbl.find_opt t.files fid with
  | None -> ()
  | Some f ->
    let page_size = Volume.page_size f.vol in
    Hashtbl.iter
      (fun index ps ->
        let base = index * page_size in
        match
          Byte_range.inter range (Byte_range.v ~lo:base ~hi:(base + page_size))
        with
        | None -> ()
        | Some pr ->
          let rel =
            Byte_range.v ~lo:(Byte_range.lo pr - base) ~hi:(Byte_range.hi pr - base)
          in
          let adopted = ref Range_set.empty in
          List.iter
            (fun (o, rs) ->
              if (not (Owner.equal o new_owner)) && not (Owner.is_transaction o)
              then begin
                let moved = Range_set.inter rs (Range_set.of_range rel) in
                if not (Range_set.is_empty moved) then begin
                  set_owner_ranges ps o (Range_set.diff rs moved);
                  adopted := Range_set.union !adopted moved
                end
              end)
            ps.mods;
          if not (Range_set.is_empty !adopted) then begin
            set_owner_ranges ps new_owner
              (Range_set.union (owner_ranges ps new_owner) !adopted);
            (* The adopter also inherits responsibility for the file extent
               covering the adopted bytes. *)
            let hi_byte =
              Range_set.fold (fun r acc -> max acc (base + Byte_range.hi r)) !adopted 0
            in
            let prev =
              match
                List.assoc_opt new_owner (List.map (fun (o, e) -> (o, e)) f.extents)
              with
              | Some e -> e
              | None -> 0
            in
            f.extents <-
              (new_owner, max prev hi_byte)
              :: List.filter (fun (o, _) -> not (Owner.equal o new_owner)) f.extents
          end)
      f.pstates

let owner_extent f owner =
  match List.assoc_opt owner (List.map (fun (o, e) -> (o, e)) f.extents) with
  | Some e -> e
  | None -> 0

let prepare t fid ~owner =
  let f = get_exn t fid in
  let dirty =
    Hashtbl.fold
      (fun index ps acc ->
        if Range_set.is_empty (owner_ranges ps owner) then acc
        else (index, ps) :: acc)
      f.pstates []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let pages =
    List.map
      (fun (index, ps) ->
        Engine.consume t.engine ~instr:(costs t).Costs.flush_page_instr;
        let slot = Volume.alloc_page f.vol in
        Volume.write_page f.vol slot ps.current;
        Cache.put t.cache f.vol slot ps.current;
        let sole =
          List.for_all (fun (o, _) -> Owner.equal o owner) ps.mods
        in
        let ranges =
          Range_set.ranges (owner_ranges ps owner)
          |> List.map (fun r -> (Byte_range.lo r, Byte_range.len r))
        in
        {
          Intentions.index;
          slot;
          base_slot = committed_slot f.inode index;
          ranges;
          sole;
        })
      dirty
  in
  let new_size =
    if pages = [] then f.inode.Volume.size
    else max f.inode.Volume.size (owner_extent f owner)
  in
  let it = { Intentions.fid; owner; new_size; pages } in
  f.prepared <- it :: f.prepared;
  it

(* Clean up an owner's volatile bookkeeping after its update committed:
   its bytes are now part of the committed state, so its mod ranges and
   extent entry disappear; pages nobody else modified revert to plain
   cached pages. *)
let forget_owner_volatile f owner =
  let drop =
    Hashtbl.fold
      (fun index ps acc ->
        set_owner_ranges ps owner Range_set.empty;
        if ps.mods = [] then index :: acc else acc)
      f.pstates []
  in
  List.iter (Hashtbl.remove f.pstates) drop;
  f.extents <- List.filter (fun (o, _) -> not (Owner.equal o owner)) f.extents;
  f.prepared <-
    List.filter (fun it -> not (Owner.equal it.Intentions.owner owner)) f.prepared

let commit_prepared_locked t (it : Intentions.t) =
  let fid = it.Intentions.fid in
  let vol = vol_exn t fid in
  let in_core = Hashtbl.find_opt t.files fid in
  Engine.consume t.engine ~instr:(costs t).Costs.commit_base_instr;
  let inode =
    match in_core with
    | Some f -> f.inode
    | None -> Volume.read_inode vol fid.File_id.ino
  in
  let max_index =
    List.fold_left (fun acc p -> max acc p.Intentions.index) (-1) it.Intentions.pages
  in
  let pages =
    if max_index < Array.length inode.Volume.pages then Array.copy inode.Volume.pages
    else begin
      let a = Array.make (max_index + 1) (-1) in
      Array.blit inode.Volume.pages 0 a 0 (Array.length inode.Volume.pages);
      a
    end
  in
  let freed = ref [] in
  List.iter
    (fun (p : Intentions.page_commit) ->
      let cur_slot = pages.(p.index) in
      if cur_slot = p.slot then
        (* Duplicate commit message (§4.4): already applied, nothing to do. *)
        Stats.incr (stats t) "commit.dup"
      else begin
        if p.sole && cur_slot = p.base_slot then begin
          (* Figure 4(a): the flushed shadow is the whole new page. *)
          Stats.incr (stats t) "commit.direct";
          pages.(p.index) <- p.slot
        end
        else begin
          (* Figure 4(b): re-read the previous version, transfer only this
             owner's ranges onto it, write the merged page back. *)
          Stats.incr (stats t) "commit.merge";
          let old_content =
            if cur_slot = -1 then blank vol else Cache.read t.cache vol cur_slot
          in
          let shadow = Cache.read t.cache vol p.slot in
          let merged = Bytes.copy old_content in
          let copied =
            List.fold_left
              (fun acc (off, len) ->
                Bytes.blit shadow off merged off len;
                acc + len)
              0 p.ranges
          in
          Engine.consume t.engine
            ~instr:
              ((costs t).Costs.commit_merge_instr
              + Costs.copy_instr (costs t) ~bytes:copied);
          Volume.write_page vol p.slot merged;
          Cache.put t.cache vol p.slot merged;
          pages.(p.index) <- p.slot
        end;
        if cur_slot <> -1 then freed := cur_slot :: !freed
      end)
    it.Intentions.pages;
  let new_inode =
    {
      inode with
      Volume.pages;
      size = max inode.Volume.size it.Intentions.new_size;
    }
  in
  Volume.write_inode vol new_inode;
  List.iter (Volume.free_page vol) !freed;
  match in_core with
  | None -> ()
  | Some f ->
    f.inode <- Volume.read_inode_nosim vol fid.File_id.ino;
    forget_owner_volatile f it.Intentions.owner

let commit_prepared t it = with_gate t it.Intentions.fid (fun () -> commit_prepared_locked t it)

let abort_prepared t (it : Intentions.t) =
  let vol = vol_exn t it.Intentions.fid in
  (* Only safe when the intentions were never applied: recovery guarantees
     this by consulting the coordinator log outcome first. *)
  List.iter (Volume.free_page vol) (Intentions.slots it);
  match Hashtbl.find_opt t.files it.Intentions.fid with
  | None -> ()
  | Some f ->
    f.prepared <-
      List.filter
        (fun o -> not (Owner.equal o.Intentions.owner it.Intentions.owner))
        f.prepared

let abort_locked t fid ~owner =
  match Hashtbl.find_opt t.files fid with
  | None -> ()
  | Some f ->
    Stats.incr (stats t) "abort.file";
    (* Free any shadow slots this owner had already flushed at prepare. *)
    List.iter
      (fun it ->
        if Owner.equal it.Intentions.owner owner then
          List.iter (Volume.free_page f.vol) (Intentions.slots it))
      f.prepared;
    f.prepared <-
      List.filter (fun it -> not (Owner.equal it.Intentions.owner owner)) f.prepared;
    let drop = ref [] in
    Hashtbl.iter
      (fun index ps ->
        let mine = owner_ranges ps owner in
        if not (Range_set.is_empty mine) then begin
          let others = List.filter (fun (o, _) -> not (Owner.equal o owner)) ps.mods in
          if others = [] then
            (* No conflicting modification: roll the page back wholesale by
               dropping the working copy (§5.2). *)
            drop := index :: !drop
          else begin
            (* Conflicting modifications present: re-read the old version
               and overwrite only the aborted records (§5.2). *)
            let old_content = committed_page_content t f.vol f.inode index in
            let copied =
              Range_set.fold
                (fun r acc ->
                  let off = Byte_range.lo r and len = Byte_range.len r in
                  Bytes.blit old_content off ps.current off len;
                  acc + len)
                mine 0
            in
            Engine.consume t.engine ~instr:(Costs.copy_instr (costs t) ~bytes:copied);
            set_owner_ranges ps owner Range_set.empty
          end
        end)
      f.pstates;
    List.iter (Hashtbl.remove f.pstates) !drop;
    f.extents <- List.filter (fun (o, _) -> not (Owner.equal o owner)) f.extents

let abort t fid ~owner = with_gate t fid (fun () -> abort_locked t fid ~owner)

let commit t fid ~owner =
  let it = prepare t fid ~owner in
  commit_prepared t it;
  it

(* Install a versioned committed update pushed (or pulled) from the
   primary copy. Only ever moves forward: anything at or below the local
   version is a duplicate and is ignored. The inode is stored with the
   primary's version verbatim so version arithmetic keeps working. *)
let install_replica_locked t fid ~version ~size ~full ~pages =
  let vol = vol_exn t fid in
  let cur =
    match committed_inode_opt t fid with
    | Some i -> i
    | None -> { Volume.ino = fid.File_id.ino; size = 0; pages = [||]; version = 0 }
  in
  if version <= cur.Volume.version then false
  else begin
    let max_index = List.fold_left (fun acc (i, _) -> max acc i) (-1) pages in
    let slots =
      if full then Array.make (max_index + 1) (-1)
      else begin
        let n = max (Array.length cur.Volume.pages) (max_index + 1) in
        let a = Array.make n (-1) in
        Array.blit cur.Volume.pages 0 a 0 (Array.length cur.Volume.pages);
        a
      end
    in
    List.iter
      (fun (index, content) ->
        let prev =
          if index < Array.length cur.Volume.pages then cur.Volume.pages.(index)
          else -1
        in
        let slot = if prev = -1 then Volume.alloc_page vol else prev in
        Volume.write_page vol slot content;
        Cache.put t.cache vol slot content;
        slots.(index) <- slot)
      pages;
    if full then
      (* Slots of the old copy that the snapshot did not carry over. *)
      Array.iteri
        (fun i s ->
          if s <> -1 && (i > max_index || slots.(i) <> s) then
            Volume.free_page vol s)
        cur.Volume.pages;
    Volume.install_inode vol
      { Volume.ino = fid.File_id.ino; size; pages = slots; version };
    (match Hashtbl.find_opt t.files fid with
    | Some f -> f.inode <- Volume.read_inode_nosim vol fid.File_id.ino
    | None -> ());
    Stats.incr (stats t) "replica.install";
    true
  end

let install_replica t fid ~version ~size ~full ~pages =
  with_gate t fid (fun () ->
      install_replica_locked t fid ~version ~size ~full ~pages)

let prepared_intentions t fid =
  match Hashtbl.find_opt t.files fid with None -> [] | Some f -> f.prepared

let crash t =
  Hashtbl.reset t.files;
  Hashtbl.reset t.gates
