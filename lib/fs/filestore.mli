(** Storage-site file state and the record-level commit mechanism (§5.2).

    One [Filestore.t] lives in each site's kernel and manages the files
    whose current storage (update) site this is. It holds, per open file:

    - the committed inode (brought into kernel memory at open, §5.1);
    - volatile working pages: the current contents including {e all}
      owners' uncommitted modifications;
    - per-owner modified byte ranges on each page — the bookkeeping that
      lets disjoint records on a single physical page be committed or
      aborted independently (Figure 4);
    - prepared-but-uncommitted intentions lists.

    Writes by different owners must touch disjoint bytes (the lock layer
    enforces mutually exclusive writes; this layer asserts it — footnote
    6). Commit takes the fast path (direct page swap) when the owner was
    the page's only modifier at prepare time and the differencing path
    otherwise. All volatile state vanishes on {!crash}; committed pages,
    inodes and anything in the volume log survive. *)

type t

exception Conflicting_write of File_id.t * Owner.t * Owner.t
(** Raised when a write overlaps another owner's uncommitted bytes —
    a locking-policy violation, never expected when the lock manager is in
    front of this layer. *)

val create : Engine.t -> cache:Cache.t -> t
val engine : t -> Engine.t

val mount : t -> Volume.t -> unit
val volume : t -> vid:int -> Volume.t option
val volumes : t -> Volume.t list

(** {1 File lifecycle} *)

val create_file : t -> vid:int -> File_id.t
(** Allocate and durably write a fresh empty inode (one I/O). Must run in
    a fiber. *)

val open_file : t -> File_id.t -> unit
(** Bring the inode in-core (one read I/O if this is the first opener) and
    bump the refcount. Must run in a fiber. Raises [Not_found] if the file
    does not exist on a mounted volume. *)

val close_file : t -> File_id.t -> unit
(** Drop a reference. In-core state is evicted once the refcount reaches
    zero and no uncommitted modifications remain. *)

val file_exists : t -> File_id.t -> bool
val is_open : t -> File_id.t -> bool

val size : t -> File_id.t -> int
(** Volatile size: committed size extended by uncommitted appends. *)

val committed_size : t -> File_id.t -> int

(** {1 Data access (must run in a fiber)} *)

val read : t -> File_id.t -> pos:int -> len:int -> Bytes.t
(** Current contents — committed data overlaid with all uncommitted
    modifications. Zero-filled past end of file. Untouched pages are read
    through the buffer cache (possible I/O); touched pages come from the
    volatile working copy. *)

val read_committed : t -> File_id.t -> pos:int -> len:int -> Bytes.t
(** Committed contents only, bypassing uncommitted state. *)

val write : t -> File_id.t -> owner:Owner.t -> pos:int -> Bytes.t -> unit
(** Modify the volatile working pages and record [owner]'s modified
    ranges. No disk I/O (pages flush at prepare). Raises
    {!Conflicting_write} on overlap with another owner's uncommitted
    bytes. *)

val modified_by : t -> File_id.t -> Owner.t -> Byte_range.t list
(** Ranges [owner] has modified and not yet committed. *)

val uncommitted_overlapping : t -> File_id.t -> Byte_range.t -> Owner.t list
(** Owners holding uncommitted modifications that intersect the range —
    what the lock manager consults to apply §3.3 rule 2. *)

val adopt : t -> File_id.t -> range:Byte_range.t -> new_owner:Owner.t -> unit
(** Transfer uncommitted modifications of {e non-transaction} owners inside
    [range] to [new_owner] (§3.3 rule 2: a transaction locking a dirty
    record becomes responsible for committing it). *)

(** {1 Commit and abort (must run in a fiber)} *)

val prepare : t -> File_id.t -> owner:Owner.t -> Intentions.t
(** Flush the owner's modified pages to fresh shadow slots (one write I/O
    per page — the intrinsic data I/O of Figure 5 step 2) and return the
    intentions list. The owner's modifications stay volatile-visible and
    the lock state is untouched; commit or abort must follow. *)

val commit_prepared : t -> Intentions.t -> unit
(** Single-file commit (§4): transfer merge-path ranges onto the latest
    committed pages (re-read + differencing copy, Figure 4b), atomically
    overwrite the inode (one I/O), free replaced pages, refresh the buffer
    cache. Works with or without volatile state, so recovery can replay
    it from the prepare log after a crash. *)

val abort_prepared : t -> Intentions.t -> unit
(** Discard a prepared update: free its shadow slots. Used by recovery
    when no volatile state survives; with volatile state use {!abort}. *)

val abort : t -> File_id.t -> owner:Owner.t -> unit
(** Roll back the owner's uncommitted modifications (§5.2): pages whose
    only modifier is [owner] revert to the committed version; pages with
    other owners' modifications get only [owner]'s ranges overwritten from
    the old version. Frees shadow slots if the owner had prepared. *)

val commit : t -> File_id.t -> owner:Owner.t -> Intentions.t
(** [prepare] immediately followed by [commit_prepared] — the path used by
    non-transaction processes and single-site transactions. Returns the
    applied intentions list (for I/O accounting by callers). *)

val has_uncommitted : t -> File_id.t -> bool
val prepared_intentions : t -> File_id.t -> Intentions.t list

(** {1 Replica support (must run in a fiber)}

    Committed-state accessors and the versioned install used by the
    replication layer. Unlike {!read}/{!read_committed} these work whether
    or not the file is open in-core: secondary copies are served and
    refreshed at storage sites where no client ever opened the file. *)

val committed_version : t -> File_id.t -> int
(** The file's per-commit version number (the committed inode's version;
    every commit bumps it by exactly one). 0 if the file does not exist
    locally. *)

val committed_page_indices : t -> File_id.t -> int list
(** Logical indices of all non-hole committed pages, ascending. *)

val committed_page : t -> File_id.t -> int -> Bytes.t option
(** Committed content of one logical page ([None] for holes / absent
    files). Reads through the buffer cache (possible I/O). *)

val read_committed_any : t -> File_id.t -> pos:int -> len:int -> Bytes.t
(** Committed contents, working from the on-volume inode when the file is
    not open in-core. Raises [Not_found] if the file does not exist
    locally. *)

val install_replica :
  t -> File_id.t -> version:int -> size:int -> full:bool ->
  pages:(int * Bytes.t) list -> bool
(** Install a versioned committed update from the primary copy: write the
    pages, atomically overwrite the inode carrying the primary's version
    verbatim. [full] means [pages] is a complete snapshot (local pages it
    does not mention are dropped); otherwise it overlays the local copy.
    Returns [false] (and does nothing) when [version] is not newer than
    the local copy. Serialized against commits on the same file. *)

(** {1 Failure} *)

val crash : t -> unit
(** Drop every piece of volatile state (working pages, per-owner ranges,
    prepared lists, refcounts). The volumes themselves survive. *)
