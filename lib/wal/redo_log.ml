type record = { r_fid : File_id.t; r_pos : int; r_data : string }

type image = { mutable data : Bytes.t; mutable size : int }

type t = {
  vol : Volume.t;
  mutable pending : (string * record list) list;  (* per owner, newest first *)
  images : (File_id.t, image) Hashtbl.t;  (* committed contents, volatile *)
  mutable dirty : (File_id.t * int) list;  (* pages needing in-place write *)
}

let wal_tag = "wal"
let magic = "WAL1:"

let create vol =
  { vol; pending = []; images = Hashtbl.create 16; dirty = [] }

let volume t = t.vol

let create_file t =
  let ino = Volume.alloc_inode t.vol in
  Volume.write_inode t.vol { Volume.ino; size = 0; pages = [||]; version = 0 };
  let fid = File_id.make ~vid:(Volume.vid t.vol) ~ino in
  Hashtbl.replace t.images fid { data = Bytes.create 0; size = 0 };
  fid

let image t fid =
  match Hashtbl.find_opt t.images fid with
  | Some img -> img
  | None ->
    let img = { data = Bytes.create 0; size = 0 } in
    Hashtbl.replace t.images fid img;
    img

let ensure_capacity img n =
  if Bytes.length img.data < n then begin
    let cap = max n (max 256 (2 * Bytes.length img.data)) in
    let bigger = Bytes.make cap '\000' in
    Bytes.blit img.data 0 bigger 0 (Bytes.length img.data);
    img.data <- bigger
  end

let apply_to_image t fid ~pos data =
  let img = image t fid in
  let len = String.length data in
  ensure_capacity img (pos + len);
  Bytes.blit_string data 0 img.data pos len;
  img.size <- max img.size (pos + len);
  let psz = Volume.page_size t.vol in
  if len > 0 then
    for page = pos / psz to (pos + len - 1) / psz do
      if not (List.mem (fid, page) t.dirty) then t.dirty <- (fid, page) :: t.dirty
    done

let write t fid ~owner ~pos data =
  if pos < 0 then invalid_arg "Redo_log.write: negative pos";
  let r = { r_fid = fid; r_pos = pos; r_data = Bytes.to_string data } in
  match List.assoc_opt owner t.pending with
  | Some rs ->
    t.pending <- (owner, r :: rs) :: List.remove_assoc owner t.pending
  | None -> t.pending <- (owner, [ r ]) :: t.pending

let read_committed t fid ~pos ~len =
  let img = image t fid in
  let out = Bytes.make len '\000' in
  let avail = max 0 (min len (img.size - pos)) in
  if avail > 0 then Bytes.blit img.data pos out 0 avail;
  out

let read t fid ~pos ~len =
  let out = read_committed t fid ~pos ~len in
  (* Overlay buffered (uncommitted) writes, oldest first. *)
  List.iter
    (fun (_, rs) ->
      List.iter
        (fun r ->
          if File_id.equal r.r_fid fid then begin
            let rlen = String.length r.r_data in
            let lo = max pos r.r_pos and hi = min (pos + len) (r.r_pos + rlen) in
            if lo < hi then
              Bytes.blit_string r.r_data (lo - r.r_pos) out (lo - pos) (hi - lo)
          end)
        (List.rev rs))
    (List.rev t.pending);
  out

let header_bytes = 24

let commit t ~owner =
  match List.assoc_opt owner t.pending with
  | None -> 0
  | Some rs ->
    let records = List.rev rs in
    let psz = Volume.page_size t.vol in
    let bytes =
      List.fold_left (fun acc r -> acc + String.length r.r_data + header_bytes) 32
        records
    in
    let log_pages = max 1 ((bytes + psz - 1) / psz) in
    (* The whole batch (including the commit record) is encoded into the
       first appended page; the remaining appends model the additional log
       pages a large batch spans. *)
    let payload = magic ^ Marshal.to_string records [] in
    let pads = List.init (log_pages - 1) (fun _ -> magic ^ "pad") in
    (* One submission for the whole commit record: under group commit the
       payload and its pad pages share a single force (with whatever else
       joined the window); unbatched this is one force per page, exactly
       the old loop. *)
    let (_ : int list) = Volume.log_append_many t.vol ~tag:wal_tag (payload :: pads) in
    List.iter (fun r -> apply_to_image t r.r_fid ~pos:r.r_pos r.r_data) records;
    t.pending <- List.remove_assoc owner t.pending;
    log_pages

let abort t ~owner = t.pending <- List.remove_assoc owner t.pending

let dirty_pages t = List.length t.dirty

let checkpoint t =
  let psz = Volume.page_size t.vol in
  let by_fid = Hashtbl.create 8 in
  List.iter
    (fun (fid, page) ->
      let cur = try Hashtbl.find by_fid fid with Not_found -> [] in
      Hashtbl.replace by_fid fid (page :: cur))
    t.dirty;
  let ios = ref 0 in
  Hashtbl.iter
    (fun fid pages ->
      let img = image t fid in
      let inode =
        try Volume.read_inode_nosim t.vol fid.File_id.ino
        with Not_found -> { Volume.ino = fid.File_id.ino; size = 0; pages = [||]; version = 0 }
      in
      let max_page = List.fold_left max 0 pages in
      let slots = Array.make (max (max_page + 1) (Array.length inode.Volume.pages)) (-1) in
      Array.blit inode.Volume.pages 0 slots 0 (Array.length inode.Volume.pages);
      List.iter
        (fun page ->
          let slot = if slots.(page) = -1 then Volume.alloc_page t.vol else slots.(page) in
          slots.(page) <- slot;
          let content = Bytes.make psz '\000' in
          let base = page * psz in
          let len = max 0 (min psz (img.size - base)) in
          if len > 0 then Bytes.blit img.data base content 0 len;
          Volume.write_page t.vol slot content;
          incr ios)
        (List.sort_uniq Int.compare pages);
      Volume.write_inode t.vol { Volume.ino = fid.File_id.ino; size = img.size; pages = slots; version = 0 };
      incr ios)
    by_fid;
  t.dirty <- [];
  (* Truncate the log: everything is on the data pages now. *)
  List.iter
    (fun (idx, tag, _) -> if tag = wal_tag then Volume.log_delete t.vol idx)
    (Volume.log_records t.vol);
  !ios

let crash t =
  t.pending <- [];
  t.dirty <- [];
  Hashtbl.reset t.images

let recover t =
  (* Rebuild images from the checkpointed on-disk state... *)
  let psz = Volume.page_size t.vol in
  List.iter
    (fun ino ->
      let inode = Volume.read_inode t.vol ino in
      let fid = File_id.make ~vid:(Volume.vid t.vol) ~ino in
      let img = { data = Bytes.make inode.Volume.size '\000'; size = inode.Volume.size } in
      Array.iteri
        (fun page slot ->
          if slot <> -1 then begin
            let content = Volume.read_page t.vol slot in
            let base = page * psz in
            let len = max 0 (min psz (inode.Volume.size - base)) in
            if len > 0 then Bytes.blit content 0 img.data base len
          end)
        inode.Volume.pages;
      Hashtbl.replace t.images fid img)
    (Volume.inode_numbers t.vol);
  (* ...then redo the committed-but-not-checkpointed records, in order. *)
  let replayed = ref 0 in
  List.iter
    (fun (_, tag, payload) ->
      if tag = wal_tag && String.length payload > String.length magic then begin
        let body = String.sub payload (String.length magic) (String.length payload - String.length magic) in
        if body <> "pad" then begin
          let records : record list = Marshal.from_string payload (String.length magic) in
          List.iter
            (fun r ->
              incr replayed;
              apply_to_image t r.r_fid ~pos:r.r_pos r.r_data)
            records
        end
      end)
    (Volume.log_records t.vol);
  !replayed
