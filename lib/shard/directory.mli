(** The authoritative shard directory: who owns the lock-manager role
    (and the primary-copy role) for a file right now, and at which epoch.

    One logical table for the whole cluster, with each shard's entries
    served by a deterministic directory site
    ({!Locus_repl.Placement.directory}) — runtime lookups and claims
    travel as kernel messages to that site so they carry network cost.
    Ownership changes are epoch CAS operations: exactly one of two racing
    claimants wins, and the losing transfer's stale epoch fences it at
    every receiver. *)

type t

val create : n_shards:int -> n_sites:int -> t
(** Raises [Invalid_argument] unless both arguments are positive. *)

val n_shards : t -> int

val shard_of : t -> File_id.t -> int
(** Deterministic fid → shard hash, stable across OCaml versions. *)

val site_of : t -> File_id.t -> Site.t
(** The directory site serving this fid's shard. *)

val lookup : t -> File_id.t -> default:Site.t -> Site.t * int * Site.t
(** [(owner, epoch, prev)] of the lock-manager role; [prev] is the site
    that issued the last successful claim (the hand-off source — see
    {!claim}). An unclaimed entry is [(default, 0, default)] — by
    convention the file's storage site. *)

val claim :
  t -> File_id.t -> default:Site.t -> new_owner:Site.t -> from_epoch:int ->
  claimer:Site.t ->
  (int, Site.t * int) result
(** Compare-and-swap: succeeds only when [from_epoch] is the entry's
    current epoch, advancing it, recording [claimer] as the hand-off
    source and returning the new epoch. On a stale [from_epoch] returns
    the current [(owner, epoch)] unchanged. Recording [claimer] is what
    lets a recorded owner that never received the transfer envelope
    decide whether adoption is safe: it must first confirm the claimer
    is no longer mid-hand-off (or has crashed, taking its lock table —
    and, via the crash sweep, the stranded owners — with it). *)

val entries : t -> (File_id.t * Site.t * int) list
(** All claimed entries, sorted by fid — introspection only. *)

val set_primary : t -> vid:int -> Site.t -> unit
(** Record the primary-copy role for a volume (mirrors the replication
    layer's election so the directory answers both roles). *)

val primary : t -> vid:int -> default:Site.t -> Site.t
