(** When does the lock-manager role migrate toward the traffic? *)

type t =
  | Never  (** ownership stays at the default placement *)
  | Threshold of int
      (** migrate after this many consecutive remote acquisitions from
          one site *)

val default : t
(** [Threshold 3]. *)

val of_string : string -> (t, string) result
(** Accepts ["never"], ["threshold:N"], or a bare positive integer. *)

val pp : t Fmt.t

val decide : t -> streak:int -> bool
(** Should a streak of this many consecutive remote acquisitions trigger
    a migration? *)
