val break_shard : bool ref
(** Self-test fault: a migrating owner keeps granting at its superseded
    epoch instead of standing down. Proves the epoch-fence oracle and the
    e18 bench gate fire. Default [false]. *)
