(* The shard directory: the authoritative answer to "which site owns the
   lock-manager role (and the primary-copy role) for fid X right now, and
   at which epoch".

   The file-id space is hashed into [n_shards] shards; each shard's
   directory entries are served by one deterministic directory site
   (Placement.directory). Runtime lookups and ownership claims travel as
   kernel messages to that site, so they carry real network cost; the
   table itself is cluster-global state, standing in for a replicated
   directory service whose internal availability is out of scope here
   (exactly like the kernel's global hint tables).

   Epochs make migration safe: a claim is a compare-and-swap on the
   entry's epoch, so of two racing claimants exactly one wins, and a
   transfer envelope stamped with a superseded epoch is fenced by the
   receiver. An entry nobody ever claimed reports the caller-supplied
   default owner (the file's storage site) at epoch 0. *)

(* [prev] records who issued the last successful claim — the hand-off
   source. Until that site has either delivered the lock-table envelope
   or aborted the stranded owners, the recorded owner must not serve from
   a fresh table; an adopter checks [prev] before assuming the role. *)
type entry = { mutable owner : Site.t; mutable epoch : int; mutable prev : Site.t }

type t = {
  n_shards : int;
  n_sites : int;
  lock_owners : (File_id.t, entry) Hashtbl.t;
  primaries : (int, Site.t) Hashtbl.t; (* vid -> primary-copy role *)
}

let create ~n_shards ~n_sites =
  if n_shards <= 0 then invalid_arg "Directory.create: need n_shards > 0";
  if n_sites <= 0 then invalid_arg "Directory.create: need n_sites > 0";
  {
    n_shards;
    n_sites;
    lock_owners = Hashtbl.create 64;
    primaries = Hashtbl.create 8;
  }

let n_shards t = t.n_shards

(* Explicit mixing arithmetic (not [Hashtbl.hash]) so shard assignment is
   stable across OCaml versions — the bench baselines depend on it. *)
let shard_of t fid =
  let h = (fid.File_id.vid * 1_000_003) + (fid.File_id.ino * 7919) in
  abs h mod t.n_shards

let site_of t fid =
  Locus_repl.Placement.directory ~n_sites:t.n_sites (shard_of t fid)

let lookup t fid ~default =
  match Hashtbl.find_opt t.lock_owners fid with
  | Some e -> (e.owner, e.epoch, e.prev)
  | None -> (default, 0, default)

(* CAS on the epoch: the claim succeeds only against the exact current
   epoch, and success advances it — so a migration that lost the race
   learns the winner instead of installing over it. *)
let claim t fid ~default ~new_owner ~from_epoch ~claimer =
  let e =
    match Hashtbl.find_opt t.lock_owners fid with
    | Some e -> e
    | None ->
      let e = { owner = default; epoch = 0; prev = default } in
      Hashtbl.add t.lock_owners fid e;
      e
  in
  if e.epoch <> from_epoch then Error (e.owner, e.epoch)
  else begin
    e.owner <- new_owner;
    e.epoch <- e.epoch + 1;
    e.prev <- claimer;
    Ok e.epoch
  end

let entries t =
  Hashtbl.fold (fun fid e acc -> (fid, e.owner, e.epoch) :: acc) t.lock_owners []
  |> List.sort (fun (a, _, _) (b, _, _) -> File_id.compare a b)

let set_primary t ~vid site = Hashtbl.replace t.primaries vid site

let primary t ~vid ~default =
  Option.value (Hashtbl.find_opt t.primaries vid) ~default
