(* Migration policy: when does the lock-manager role chase the traffic?
   [Threshold n] moves it to a remote site after [n] consecutive
   acquisitions from that site (the same streak rule as §5.2 delegation,
   but with an epoch-fenced transfer instead of a recallable loan);
   [Never] pins ownership at the default placement — the bench's "off"
   row and a safe choice for uniformly spread traffic. *)

type t = Never | Threshold of int

let default = Threshold 3

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "never" | "off" -> Ok Never
  | s -> (
    let n =
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "threshold" ->
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      | Some _ -> None
      | None -> int_of_string_opt s
    in
    match n with
    | Some n when n > 0 -> Ok (Threshold n)
    | Some _ | None ->
      Error (Printf.sprintf "bad migration policy %S (never | threshold:N)" s))

let pp ppf = function
  | Never -> Fmt.string ppf "never"
  | Threshold n -> Fmt.pf ppf "threshold:%d" n

let decide t ~streak =
  match t with Never -> false | Threshold n -> streak >= n
