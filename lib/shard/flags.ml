(* Deliberate-breakage flag for the epoch-fence self-test (the same
   pattern as [Locus_batch.Flags.break_batch]): with [break_shard] set, a
   migrating owner "forgets" to stand down — it keeps its table, keeps
   granting at the superseded epoch, and suppresses the hint updates that
   would steer clients to the new owner. The checker's epoch-fence oracle
   (and the e18 local-hit-ratio gate) must catch the resulting
   two-managers world; CI inverts on it via [--break-shard] /
   [LOCUS_BREAK_SHARD=1]. *)

let break_shard = ref false
