type inode = { ino : int; size : int; pages : int array; version : int }

type log_record = { idx : int; tag : string; payload : string; mutable live : bool }

(* One group-commit participant: [work] installs its log records (no I/O
   of its own — the batch pays one shared force), [done_] wakes the
   submitting fiber once the force has landed. *)
type group_item = { work : unit -> unit; done_ : unit Engine.Ivar.t }

type t = {
  engine : Engine.t;
  vid : int;
  page_size : int;
  store : (int, Bytes.t) Hashtbl.t;  (* non-volatile data pages *)
  inodes : (int, inode) Hashtbl.t;  (* non-volatile inode table *)
  mutable next_page : int;
  mutable free_pages : int list;
  mutable next_inode : int;
  mutable log : log_record list;  (* newest first *)
  mutable next_log_idx : int;
  mutable busy_until : int;  (* disk head horizon: I/Os serialize *)
  mutable two_write_log : bool;
  mutable reads : int;
  mutable writes : int;
  mutable log_writes : int;
  group : group_item Locus_batch.Batcher.t;  (* group-commit window *)
  mutable group_trace : size:int -> (unit -> unit) -> unit;
}

let create engine ~vid ?(page_size = 1024) () =
  if page_size <= 0 then invalid_arg "Volume.create: non-positive page size";
  {
    engine;
    vid;
    page_size;
    store = Hashtbl.create 256;
    inodes = Hashtbl.create 64;
    next_page = 0;
    free_pages = [];
    next_inode = 1;
    log = [];
    next_log_idx = 0;
    busy_until = 0;
    two_write_log = false;
    reads = 0;
    writes = 0;
    log_writes = 0;
    group = Locus_batch.Batcher.create engine ~name:(Printf.sprintf "grpcommit@vol%d" vid);
    group_trace = (fun ~size:_ k -> k ());
  }

let vid t = t.vid
let page_size t = t.page_size
let engine t = t.engine

(* One disk I/O: wait for the head, then seek+transfer. Serializing through
   [busy_until] models contention on the single spindle. *)
let io t ~kind ~bytes =
  let dur = Costs.disk_io_us (Engine.costs t.engine) ~bytes in
  let start = max (Engine.now t.engine) t.busy_until in
  let finish = start + dur in
  t.busy_until <- finish;
  Stats.incr (Engine.stats t.engine) ("disk.io." ^ kind);
  Engine.sleep (finish - Engine.now t.engine)

let alloc_page t =
  match t.free_pages with
  | p :: rest ->
    t.free_pages <- rest;
    p
  | [] ->
    let p = t.next_page in
    t.next_page <- t.next_page + 1;
    p

let free_page t p = t.free_pages <- p :: t.free_pages
let pages_in_use t = t.next_page - List.length t.free_pages

let blank t = Bytes.make t.page_size '\000'

let read_page_nosim t p =
  match Hashtbl.find_opt t.store p with
  | Some b -> Bytes.copy b
  | None -> blank t

let read_page t p =
  t.reads <- t.reads + 1;
  io t ~kind:"read" ~bytes:t.page_size;
  read_page_nosim t p

let write_page t p b =
  let page = blank t in
  Bytes.blit b 0 page 0 (min (Bytes.length b) t.page_size);
  t.writes <- t.writes + 1;
  io t ~kind:"write" ~bytes:t.page_size;
  Hashtbl.replace t.store p page

let alloc_inode t =
  let ino = t.next_inode in
  t.next_inode <- t.next_inode + 1;
  ino

let read_inode_nosim t ino =
  match Hashtbl.find_opt t.inodes ino with
  | Some i -> { i with pages = Array.copy i.pages }
  | None -> raise Not_found

let read_inode t ino =
  t.reads <- t.reads + 1;
  io t ~kind:"read" ~bytes:t.page_size;
  read_inode_nosim t ino

let write_inode t inode =
  t.writes <- t.writes + 1;
  io t ~kind:"write" ~bytes:t.page_size;
  let prev_version =
    match Hashtbl.find_opt t.inodes inode.ino with
    | Some old -> old.version
    | None -> 0
  in
  (* Keep the allocator ahead of inodes installed directly (replica
     propagation writes an inode the local allocator never handed out). *)
  t.next_inode <- max t.next_inode (inode.ino + 1);
  Hashtbl.replace t.inodes inode.ino
    { inode with pages = Array.copy inode.pages; version = prev_version + 1 }

(* Install an inode at exactly [inode.version] — no auto-bump. Used when a
   secondary replica mirrors the primary's committed state: the version
   number is the primary's commit counter and must survive verbatim so
   version arithmetic (dup / next / gap) stays meaningful. *)
let install_inode t inode =
  t.writes <- t.writes + 1;
  io t ~kind:"write" ~bytes:t.page_size;
  t.next_inode <- max t.next_inode (inode.ino + 1);
  Hashtbl.replace t.inodes inode.ino { inode with pages = Array.copy inode.pages }

let inode_version_nosim t ino =
  match Hashtbl.find_opt t.inodes ino with Some i -> i.version | None -> 0

let inode_numbers t =
  Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes [] |> List.sort Int.compare

let inode_exists t ino = Hashtbl.mem t.inodes ino
let free_inode t ino = Hashtbl.remove t.inodes ino

let log_io t =
  t.log_writes <- t.log_writes + 1;
  io t ~kind:"log" ~bytes:t.page_size

(* Record installation without the force — the group-commit flush pays
   one shared [log_io] for the whole batch, then installs each member's
   records in submission order. Indices are assigned at install time so
   the on-disk order matches the flush order deterministically. *)
let append_record t ~tag payload =
  let idx = t.next_log_idx in
  t.next_log_idx <- idx + 1;
  t.log <- { idx; tag; payload; live = true } :: t.log;
  idx

let overwrite_record t idx ~tag payload =
  match List.find_opt (fun r -> r.idx = idx) t.log with
  | None -> invalid_arg "Volume.log_overwrite: no such record"
  | Some r ->
    t.log <- { idx; tag; payload; live = r.live } :: List.filter (fun r -> r.idx <> idx) t.log

(* Flush one group-commit batch: a single shared force (two with the
   footnote-9 ablation), then install every member's records and wake the
   waiters. Nothing is installed before the force completes, so a crash
   anywhere inside the window or the force loses the whole batch
   atomically — same guarantee as an unforced redo record. *)
let group_flush t items =
  let n = List.length items in
  let st = Engine.stats t.engine in
  Stats.hist st "commit.batch_size" n;
  Stats.incr st "log.group_forces";
  if n > 1 then Stats.add st "log.forces_saved" (n - 1);
  t.group_trace ~size:n (fun () ->
      log_io t;
      if t.two_write_log then log_io t;
      List.iter (fun it -> it.work ()) items;
      List.iter (fun it -> ignore (Engine.try_fill t.engine it.done_ ())) items)

let group_submit t work =
  let done_ = Engine.Ivar.create () in
  Locus_batch.Batcher.submit t.group ~flush:(group_flush t) { work; done_ };
  Engine.await done_

let set_group_commit t ~site ~window_us =
  Locus_batch.Batcher.configure t.group ~site ~window_us

let set_group_trace t f = t.group_trace <- f
let group_commit_window_us t = Locus_batch.Batcher.window_us t.group
let reset_group_commit t = Locus_batch.Batcher.reset t.group

let log_append t ~tag payload =
  if Locus_batch.Batcher.enabled t.group then begin
    let r = ref (-1) in
    group_submit t (fun () -> r := append_record t ~tag payload);
    !r
  end
  else begin
    (* Unbatched: reserve the index, force, and only then install — a
       crash during the force must lose the record. *)
    let idx = t.next_log_idx in
    t.next_log_idx <- idx + 1;
    log_io t;
    if t.two_write_log then log_io t;
    t.log <- { idx; tag; payload; live = true } :: t.log;
    idx
  end

(* Append several records under a single submission: batched, the whole
   group shares one force with whatever else joined the window (the redo
   log uses this so a multi-page commit record is one group-commit member,
   not [log_pages] of them); unbatched it degrades to one force per
   record, today's behaviour. *)
let log_append_many t ~tag payloads =
  if Locus_batch.Batcher.enabled t.group then begin
    let r = ref [] in
    group_submit t (fun () ->
        r := List.map (fun p -> append_record t ~tag p) payloads);
    !r
  end
  else List.map (fun p -> log_append t ~tag p) payloads

let log_overwrite t idx ~tag payload =
  if Locus_batch.Batcher.enabled t.group then
    group_submit t (fun () -> overwrite_record t idx ~tag payload)
  else begin
    log_io t;
    overwrite_record t idx ~tag payload
  end

let log_records t =
  List.filter_map (fun r -> if r.live then Some (r.idx, r.tag, r.payload) else None) t.log
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let log_delete t idx =
  List.iter (fun r -> if r.idx = idx then r.live <- false) t.log

let set_two_write_log t v = t.two_write_log <- v
let io_reads t = t.reads
let io_writes t = t.writes
let io_log_writes t = t.log_writes

let reset_io_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.log_writes <- 0
