type inode = { ino : int; size : int; pages : int array; version : int }

type log_record = { idx : int; tag : string; payload : string; mutable live : bool }

type t = {
  engine : Engine.t;
  vid : int;
  page_size : int;
  store : (int, Bytes.t) Hashtbl.t;  (* non-volatile data pages *)
  inodes : (int, inode) Hashtbl.t;  (* non-volatile inode table *)
  mutable next_page : int;
  mutable free_pages : int list;
  mutable next_inode : int;
  mutable log : log_record list;  (* newest first *)
  mutable next_log_idx : int;
  mutable busy_until : int;  (* disk head horizon: I/Os serialize *)
  mutable two_write_log : bool;
  mutable reads : int;
  mutable writes : int;
  mutable log_writes : int;
}

let create engine ~vid ?(page_size = 1024) () =
  if page_size <= 0 then invalid_arg "Volume.create: non-positive page size";
  {
    engine;
    vid;
    page_size;
    store = Hashtbl.create 256;
    inodes = Hashtbl.create 64;
    next_page = 0;
    free_pages = [];
    next_inode = 1;
    log = [];
    next_log_idx = 0;
    busy_until = 0;
    two_write_log = false;
    reads = 0;
    writes = 0;
    log_writes = 0;
  }

let vid t = t.vid
let page_size t = t.page_size
let engine t = t.engine

(* One disk I/O: wait for the head, then seek+transfer. Serializing through
   [busy_until] models contention on the single spindle. *)
let io t ~kind ~bytes =
  let dur = Costs.disk_io_us (Engine.costs t.engine) ~bytes in
  let start = max (Engine.now t.engine) t.busy_until in
  let finish = start + dur in
  t.busy_until <- finish;
  Stats.incr (Engine.stats t.engine) ("disk.io." ^ kind);
  Engine.sleep (finish - Engine.now t.engine)

let alloc_page t =
  match t.free_pages with
  | p :: rest ->
    t.free_pages <- rest;
    p
  | [] ->
    let p = t.next_page in
    t.next_page <- t.next_page + 1;
    p

let free_page t p = t.free_pages <- p :: t.free_pages
let pages_in_use t = t.next_page - List.length t.free_pages

let blank t = Bytes.make t.page_size '\000'

let read_page_nosim t p =
  match Hashtbl.find_opt t.store p with
  | Some b -> Bytes.copy b
  | None -> blank t

let read_page t p =
  t.reads <- t.reads + 1;
  io t ~kind:"read" ~bytes:t.page_size;
  read_page_nosim t p

let write_page t p b =
  let page = blank t in
  Bytes.blit b 0 page 0 (min (Bytes.length b) t.page_size);
  t.writes <- t.writes + 1;
  io t ~kind:"write" ~bytes:t.page_size;
  Hashtbl.replace t.store p page

let alloc_inode t =
  let ino = t.next_inode in
  t.next_inode <- t.next_inode + 1;
  ino

let read_inode_nosim t ino =
  match Hashtbl.find_opt t.inodes ino with
  | Some i -> { i with pages = Array.copy i.pages }
  | None -> raise Not_found

let read_inode t ino =
  t.reads <- t.reads + 1;
  io t ~kind:"read" ~bytes:t.page_size;
  read_inode_nosim t ino

let write_inode t inode =
  t.writes <- t.writes + 1;
  io t ~kind:"write" ~bytes:t.page_size;
  let prev_version =
    match Hashtbl.find_opt t.inodes inode.ino with
    | Some old -> old.version
    | None -> 0
  in
  (* Keep the allocator ahead of inodes installed directly (replica
     propagation writes an inode the local allocator never handed out). *)
  t.next_inode <- max t.next_inode (inode.ino + 1);
  Hashtbl.replace t.inodes inode.ino
    { inode with pages = Array.copy inode.pages; version = prev_version + 1 }

(* Install an inode at exactly [inode.version] — no auto-bump. Used when a
   secondary replica mirrors the primary's committed state: the version
   number is the primary's commit counter and must survive verbatim so
   version arithmetic (dup / next / gap) stays meaningful. *)
let install_inode t inode =
  t.writes <- t.writes + 1;
  io t ~kind:"write" ~bytes:t.page_size;
  t.next_inode <- max t.next_inode (inode.ino + 1);
  Hashtbl.replace t.inodes inode.ino { inode with pages = Array.copy inode.pages }

let inode_version_nosim t ino =
  match Hashtbl.find_opt t.inodes ino with Some i -> i.version | None -> 0

let inode_numbers t =
  Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes [] |> List.sort Int.compare

let inode_exists t ino = Hashtbl.mem t.inodes ino
let free_inode t ino = Hashtbl.remove t.inodes ino

let log_io t =
  t.log_writes <- t.log_writes + 1;
  io t ~kind:"log" ~bytes:t.page_size

let log_append t ~tag payload =
  let idx = t.next_log_idx in
  t.next_log_idx <- idx + 1;
  log_io t;
  if t.two_write_log then log_io t;
  t.log <- { idx; tag; payload; live = true } :: t.log;
  idx

let log_overwrite t idx ~tag payload =
  log_io t;
  match List.find_opt (fun r -> r.idx = idx) t.log with
  | None -> invalid_arg "Volume.log_overwrite: no such record"
  | Some r ->
    t.log <- { idx; tag; payload; live = r.live } :: List.filter (fun r -> r.idx <> idx) t.log

let log_records t =
  List.filter_map (fun r -> if r.live then Some (r.idx, r.tag, r.payload) else None) t.log
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let log_delete t idx =
  List.iter (fun r -> if r.idx = idx then r.live <- false) t.log

let set_two_write_log t v = t.two_write_log <- v
let io_reads t = t.reads
let io_writes t = t.writes
let io_log_writes t = t.log_writes

let reset_io_counters t =
  t.reads <- 0;
  t.writes <- 0;
  t.log_writes <- 0
