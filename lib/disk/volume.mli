(** A simulated logical volume (filesystem medium): non-volatile page
    store, inode table, and an appendable per-volume log area.

    This models the paper's storage substrate: files are sets of data pages
    named by an inode's page pointers, commits atomically overwrite the
    inode (§4), and transaction logs live on the same medium as the files
    they describe (§4.4). Everything stored through this interface survives
    a simulated site crash; whatever a kernel keeps in buffers does not.

    Every [read_page]/[write_page]/[write_inode]/[log_append] charges one
    disk I/O of virtual time and bumps the engine counters that the
    Figure 5 experiment reads. I/Os on one volume serialize: the volume
    keeps a busy-until horizon, so concurrent requests queue (disk
    contention). *)

type t

type inode = {
  ino : int;
  size : int;  (** file length in bytes *)
  pages : int array;  (** page slot for each page-sized extent; -1 = hole *)
  version : int;  (** bumped on every inode write; used by recovery checks *)
}

val create : Engine.t -> vid:int -> ?page_size:int -> unit -> t
(** [page_size] defaults to 1024 bytes (the paper's measurement setup,
    footnote 11). *)

val vid : t -> int
val page_size : t -> int
val engine : t -> Engine.t

(** {1 Data pages}

    Page contents are copied on both read and write: callers can never
    alias the non-volatile store. *)

val alloc_page : t -> int
(** Allocate a free page slot (in-memory bookkeeping, no I/O: allocation
    becomes durable only when the inode pointing at the page is written). *)

val free_page : t -> int -> unit

val pages_in_use : t -> int
(** Allocated and not yet freed — for storage-leak checks: after all
    commits and aborts settle, this must equal the number of page slots
    referenced by inodes. *)

val read_page : t -> int -> Bytes.t
(** Blocking read of one page; must run in a fiber. *)

val write_page : t -> int -> Bytes.t -> unit
(** Blocking write of one page; must run in a fiber. Short buffers are
    zero-padded to the page size. *)

val read_page_nosim : t -> int -> Bytes.t
(** Read without charging I/O — for assertions and test oracles only. *)

(** {1 Inodes} *)

val alloc_inode : t -> int

val read_inode : t -> int -> inode
(** Blocking; must run in a fiber. Raises [Not_found] for a free inode. *)

val write_inode : t -> inode -> unit
(** Blocking atomic overwrite of the descriptor block — this is the commit
    point of the single-file commit mechanism (§4). The stored inode gets
    a fresh [version]. *)

val install_inode : t -> inode -> unit
(** Blocking atomic overwrite that stores the inode at exactly
    [inode.version] (no auto-bump). Replica propagation uses this so a
    secondary's inode version mirrors the primary's commit counter;
    everything else should use {!write_inode}. *)

val inode_version_nosim : t -> int -> int
(** Current stored version of an inode, 0 if the inode is free. No I/O
    charge — replica version comparisons charge explicitly. *)

val read_inode_nosim : t -> int -> inode
val inode_numbers : t -> int list
(** All allocated inode numbers, ascending (no I/O charge — recovery scans
    charge explicitly). *)

val inode_exists : t -> int -> bool
val free_inode : t -> int -> unit

(** {1 Per-volume log}

    An append-only record store used for the coordinator and prepare logs.
    Records are opaque strings (the transaction layer defines the codec). *)

val log_append : t -> tag:string -> string -> int
(** Blocking append; returns the record's index. With
    [two_write_log] (below) enabled, charges two I/Os — reproducing the
    uncorrected behaviour of footnote 9 — otherwise one. *)

val log_append_many : t -> tag:string -> string list -> int list
(** Append several records under a single submission. With group commit
    enabled the whole group rides one batch member — one shared force with
    whatever else joined the window; disabled, it degrades to one
    {!log_append} (one force) per record. The redo log uses this so a
    multi-page commit record costs one window, not [log_pages] of them. *)

val log_overwrite : t -> int -> tag:string -> string -> unit
(** Blocking in-place update of a log record (e.g. writing the commit mark
    into a coordinator log, §4.2). One I/O. *)

(** {2 Group commit}

    With a non-zero window, [log_append]/[log_overwrite]/[log_append_many]
    join a bounded batch window instead of forcing immediately: one shared
    force covers every record that joined, after which the records install
    and the submitting fibers resume. Records are never installed before
    the shared force completes, so a crash inside the window (or during
    the force) loses the whole batch atomically — exactly the guarantee an
    unforced redo record already has. Per-flush accounting:
    ["commit.batch_size"] histogram, ["log.group_forces"] and
    ["log.forces_saved"] counters. *)

val set_group_commit : t -> site:int -> window_us:int -> unit
(** Enable (window > 0) or disable (0, the default) group commit. [site]
    attributes the flusher fiber, so a crash of the hosting site kills the
    pending batch together with its waiters. *)

val group_commit_window_us : t -> int

val reset_group_commit : t -> unit
(** Crash path: drop any batch still waiting in the window (its records
    were never forced, so losing them mirrors the disk's behaviour). *)

val set_group_trace : t -> (size:int -> (unit -> unit) -> unit) -> unit
(** Observability hook: wraps each group flush (the shared force plus
    record installation); [size] is the number of batch members. The
    kernel points this at a ["commit.batch"] tracing span. *)

val log_records : t -> (int * string * string) list
(** All live [(index, tag, payload)] records, oldest first. No I/O charge:
    recovery charges explicitly for its scan. *)

val log_delete : t -> int -> unit
(** Discard a record once commit/abort processing has finished (§4.4).
    No I/O charge (modelled as a lazy space reuse). *)

val set_two_write_log : t -> bool -> unit
(** Ablation knob for footnote 9: when [true], every {!log_append} costs
    two I/Os (data page + log inode) as in the paper's uncorrected
    implementation. Default [false]. *)

(** {1 Accounting} *)

val io_reads : t -> int
val io_writes : t -> int
val io_log_writes : t -> int
val reset_io_counters : t -> unit
