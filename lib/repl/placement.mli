(** Replica placement for replicated volumes.

    Each volume has one primary copy plus [factor - 1] secondary copies on
    distinct sites. All locking and writes go through the primary; reads
    may be served by any reachable replica (§5.2 primary-copy model). *)

val volumes : n_sites:int -> factor:int -> (int * Site.t list) list
(** [volumes ~n_sites ~factor] builds a volume table suitable for
    [Kernel.Config.volumes]: one volume per site, volume [v] hosted by
    [factor] consecutive sites starting at [v]. The first host of each
    list is the primary. [factor] is clamped to [1 .. n_sites]. *)

val primary : Site.t list -> Site.t
(** First host of a replica set. Raises [Invalid_argument] on []. *)

val secondaries : Site.t list -> Site.t list
(** All hosts but the primary. Raises [Invalid_argument] on []. *)

val directory : n_sites:int -> int -> Site.t
(** [directory ~n_sites shard] is the site serving shard [shard]'s
    directory entries (round-robin, like {!volumes}). Raises
    [Invalid_argument] on a non-positive site count or negative shard. *)
