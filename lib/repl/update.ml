(* A versioned committed-state update for one file replica.

   [version] is the file's per-commit version number: the primary's inode
   version after the commit that produced this update. A delta carries
   only the pages that commit touched; a full update carries every
   non-hole page and can be installed over any older replica state. *)

type t = {
  fid : File_id.t;
  version : int;
  size : int;
  full : bool;
  pages : (int * Bytes.t) list;
}

let delta ~fid ~version ~size pages = { fid; version; size; full = false; pages }
let full ~fid ~version ~size pages = { fid; version; size; full = true; pages }

(* Payload weight of one update — what actually crosses the wire when
   phase-2 deltas are coalesced per secondary (the batch envelope's cost
   is per message, the page bytes are per update regardless). *)
let bytes u = List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 u.pages

let pp ppf u =
  Fmt.pf ppf "@[%a v%d size=%d %s{%a}@]" File_id.pp u.fid u.version u.size
    (if u.full then "full" else "delta")
    (Fmt.list ~sep:Fmt.comma (fun ppf (i, _) -> Fmt.int ppf i))
    u.pages
