(** Per-site freshness tracking for hosted replicas.

    Tracks, for each replicated volume a site hosts, whether the local
    copy is known current ([Fresh]) or may have missed committed updates
    ([Degraded]): after a partition, a co-host crash, or a local restart.
    Degraded replicas serve reads flagged as degraded and refuse updates
    until a reconciliation pass completes. *)

type state = Fresh | Degraded

type t

val create : unit -> t

val state : t -> int -> state
(** Freshness of the local copy of volume [vid] (Fresh if never degraded). *)

val fresh : t -> int -> bool

val degrade : t -> int -> int
(** Mark [vid] degraded and return a new reconciliation generation; any
    reconciler for [vid] started under an older generation should give
    up. *)

val refresh : t -> int -> unit
(** Mark [vid] fresh again (reconciliation completed). *)

val generation : t -> int -> int
(** Current reconciliation generation of [vid]. *)

val clear : t -> unit
(** Forget all state (site crash: freshness is re-established on restart). *)

val degraded : t -> int list
(** Sorted list of degraded volume ids. *)

val pp_state : state Fmt.t
