(* Per-site freshness of hosted replicas.

   A replica is [Fresh] until a topology change or local restart suggests
   it may have missed committed updates; it is then [Degraded] until a
   reconciliation pass confirms it has pulled every missed version from
   all co-hosts. A degraded replica still serves reads (marked degraded,
   which the one-copy-serializability checker treats as a permitted
   relaxed access) but refuses writes, file creation, and prepare votes,
   so divergent version histories can never be created. *)

type state = Fresh | Degraded

type t = {
  states : (int, state * int) Hashtbl.t;
      (* vid -> state, generation; absent = Fresh, gen 0 *)
}

let create () = { states = Hashtbl.create 7 }

let state t vid =
  match Hashtbl.find_opt t.states vid with Some (s, _) -> s | None -> Fresh

let fresh t vid = state t vid = Fresh

let generation t vid =
  match Hashtbl.find_opt t.states vid with Some (_, g) -> g | None -> 0

let degrade t vid =
  let g = generation t vid + 1 in
  Hashtbl.replace t.states vid (Degraded, g);
  g

let refresh t vid = Hashtbl.replace t.states vid (Fresh, generation t vid)
let clear t = Hashtbl.reset t.states

let degraded t =
  Hashtbl.fold
    (fun vid (s, _) acc -> if s = Degraded then vid :: acc else acc)
    t.states []
  |> List.sort compare

let pp_state ppf = function
  | Fresh -> Fmt.string ppf "fresh"
  | Degraded -> Fmt.string ppf "degraded"
