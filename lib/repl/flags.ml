(* Fault-injection switches for the replication layer (self-tests only). *)

(* When set, the primary commits and bumps versions but silently drops
   phase-2 propagation to secondaries. Secondaries then serve stale data
   without being marked degraded — which the one-copy-serializability
   checker must catch. Used by `locusctl explore --break-repl` and the CI
   self-test; reset it when done. *)
let drop_propagation = ref false
