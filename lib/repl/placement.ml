(* Replica placement: volume [v]'s copies live on [factor] consecutive
   sites starting at site [v mod n_sites]. The first host is the primary
   (the paper's "primary copy" / current synchronization site, §5.2); the
   rest are secondaries. Consecutive placement keeps every site hosting
   the same number of volumes, so read fan-out spreads evenly. *)

let volumes ~n_sites ~factor =
  if n_sites <= 0 then invalid_arg "Placement.volumes: need at least one site";
  let factor = max 1 (min factor n_sites) in
  List.init n_sites (fun v ->
      (v, List.init factor (fun j -> (v + j) mod n_sites)))

let primary hosts =
  match hosts with
  | [] -> invalid_arg "Placement.primary: empty replica set"
  | p :: _ -> p

let secondaries hosts =
  match hosts with
  | [] -> invalid_arg "Placement.secondaries: empty replica set"
  | _ :: rest -> rest

(* Shard-directory placement: shard [s]'s authoritative directory entries
   are served by site [s mod n_sites] — the same round-robin spreading as
   volumes, so at 32+ sites every site carries its share of directory
   traffic. *)
let directory ~n_sites shard =
  if n_sites <= 0 then invalid_arg "Placement.directory: need at least one site";
  if shard < 0 then invalid_arg "Placement.directory: negative shard";
  shard mod n_sites
