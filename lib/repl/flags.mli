(** Fault-injection switches for replication self-tests. *)

val drop_propagation : bool ref
(** When true, the primary silently skips phase-2 replica propagation
    (versions still advance), leaving secondaries stale and unaware. The
    checker's one-copy-serializability pass must flag the resulting stale
    reads; used by [locusctl explore --break-repl] and CI. Default false. *)
