(** Versioned committed-state updates propagated from a file's primary
    copy to its secondaries.

    Every commit at the primary bumps the file's inode version by exactly
    one, so a secondary can tell a duplicate (version <= local), the next
    update in sequence (version = local + 1), or a gap that requires a
    full pull from the primary. *)

type t = {
  fid : File_id.t;
  version : int;  (** primary's committed inode version after the commit *)
  size : int;  (** committed file size at [version] *)
  full : bool;  (** full snapshot (installable over any older state) *)
  pages : (int * Bytes.t) list;  (** page index -> committed page content *)
}

val delta : fid:File_id.t -> version:int -> size:int -> (int * Bytes.t) list -> t
(** Pages touched by one commit; apply only at exactly [version - 1]. *)

val full : fid:File_id.t -> version:int -> size:int -> (int * Bytes.t) list -> t
(** Every non-hole committed page; installable over any older version. *)

val bytes : t -> int
(** Total page payload carried by this update — the per-update wire cost
    that remains when several updates coalesce into one batched message
    (the ["replica.propagate_bytes"] counter). *)

val pp : t Fmt.t
