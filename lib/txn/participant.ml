type entry = {
  intentions : Intentions.t list;
  log_refs : (int * int) list;  (* vid, log index *)
  coordinator_site : int;
}

type t = {
  store : Filestore.t;
  mutable per_file_log : bool;
  mutable prepared : (Txid.t * entry) list;
}

let create store = { store; per_file_log = false; prepared = [] }
let filestore t = t.store
let set_prepare_log_per_file t v = t.per_file_log <- v

let find t txid =
  List.find_opt (fun (tx, _) -> Txid.equal tx txid) t.prepared |> Option.map snd

let is_prepared t txid = find t txid <> None
let prepared_transactions t = List.map fst t.prepared

let prepared_intentions t txid =
  match find t txid with Some e -> e.intentions | None -> []

let prepared_files t txid =
  prepared_intentions t txid |> List.map (fun it -> it.Intentions.fid)

let prepared_for_file t fid =
  List.filter_map
    (fun (txid, _) ->
      if List.exists (File_id.equal fid) (prepared_files t txid) then Some txid
      else None)
    t.prepared

let coordinator_of t txid = find t txid |> Option.map (fun e -> e.coordinator_site)

let remove t txid =
  t.prepared <- List.filter (fun (tx, _) -> not (Txid.equal tx txid)) t.prepared

let prepare t ~txid ~coordinator_site ~files =
  let owner = Owner.Transaction txid in
  (* Flush this transaction's dirty pages on each locally stored file; a
     file the transaction only read yields no intentions and costs no
     prepare I/O (Figure 5: only intrinsic data I/O repeats). *)
  let intentions =
    List.filter_map
      (fun fid ->
        if not (Filestore.is_open t.store fid) then None
        else begin
          let it = Filestore.prepare t.store fid ~owner in
          if it.Intentions.pages = [] then None else Some it
        end)
      files
  in
  (* One prepare record per volume (or per file under the footnote-10
     ablation), on the same medium as the data it describes (§4.4). *)
  let groups =
    if t.per_file_log then List.map (fun it -> [ it ]) intentions
    else begin
      let by_vid = Hashtbl.create 4 in
      List.iter
        (fun it ->
          let vid = it.Intentions.fid.File_id.vid in
          let cur = try Hashtbl.find by_vid vid with Not_found -> [] in
          Hashtbl.replace by_vid vid (it :: cur))
        intentions;
      Hashtbl.fold (fun _ its acc -> List.rev its :: acc) by_vid []
    end
  in
  let log_refs =
    List.filter_map
      (fun its ->
        match its with
        | [] -> None
        | first :: _ ->
          let vid = first.Intentions.fid.File_id.vid in
          let vol =
            match Filestore.volume t.store ~vid with
            | Some v -> v
            | None -> invalid_arg "Participant.prepare: volume not mounted"
          in
          let record =
            Log_record.Prepare
              {
                Log_record.txid;
                coordinator_site;
                intentions = its;
                locked = List.map (fun it -> it.Intentions.fid) its;
              }
          in
          let idx =
            Volume.log_append vol ~tag:Log_record.prepare_tag (Log_record.encode record)
          in
          Some (vid, idx))
      groups
  in
  remove t txid;
  t.prepared <- (txid, { intentions; log_refs; coordinator_site }) :: t.prepared;
  true

let drop_log_refs t entry =
  List.iter
    (fun (vid, idx) ->
      match Filestore.volume t.store ~vid with
      | Some vol -> Volume.log_delete vol idx
      | None -> ())
    entry.log_refs

let commit t ~txid =
  match find t txid with
  | None -> ()  (* duplicate commit message: already finished here (§4.4) *)
  | Some entry ->
    List.iter (Filestore.commit_prepared t.store) entry.intentions;
    drop_log_refs t entry;
    remove t txid

let abort t ~txid =
  match find t txid with
  | None -> ()
  | Some entry ->
    List.iter
      (fun it ->
        let fid = it.Intentions.fid in
        if Filestore.is_open t.store fid then
          (* Volatile state survives: full §5.2 record rollback (also frees
             the flushed shadow slots). *)
          Filestore.abort t.store fid ~owner:(Owner.Transaction txid)
        else Filestore.abort_prepared t.store it)
      entry.intentions;
    drop_log_refs t entry;
    remove t txid

let recover t =
  t.prepared <- [];
  let in_doubt = ref [] in
  List.iter
    (fun vol ->
      List.iter
        (fun (idx, tag, payload) ->
          if tag = Log_record.prepare_tag then begin
            let (_ : Bytes.t) = Volume.read_page vol 0 in
            match Log_record.decode payload with
            | Some (Log_record.Prepare p) ->
              let txid = p.Log_record.txid in
              let entry =
                match find t txid with
                | Some e ->
                  {
                    e with
                    intentions = e.intentions @ p.Log_record.intentions;
                    log_refs = (Volume.vid vol, idx) :: e.log_refs;
                  }
                | None ->
                  {
                    intentions = p.Log_record.intentions;
                    log_refs = [ (Volume.vid vol, idx) ];
                    coordinator_site = p.Log_record.coordinator_site;
                  }
              in
              remove t txid;
              t.prepared <- (txid, entry) :: t.prepared;
              if
                not
                  (List.exists (fun (tx, _) -> Txid.equal tx txid) !in_doubt)
              then in_doubt := (txid, p.Log_record.coordinator_site) :: !in_doubt
            | Some (Log_record.Coordinator _) | None -> ()
          end)
        (Volume.log_records vol))
    (Filestore.volumes t.store);
  List.rev !in_doubt

let crash t = t.prepared <- []
