(** Participant-site transaction state (second log level, §4.2).

    On receipt of a prepare message the participant flushes the
    transaction's modified records (shadow pages), writes one prepare log
    record per logical volume holding involved files — capturing the
    intentions lists and lock summary — and votes. After the coordinator
    decides, a commit or abort message triggers phase 2: applying or
    discarding the prepared intentions and (in the kernel) releasing the
    retained locks.

    All of this state is rebuilt from the volume logs by {!recover} after
    a crash; transactions found in doubt must ask their coordinator for
    the outcome (presumed abort if the coordinator no longer knows). *)

type t

val create : Filestore.t -> t
val filestore : t -> Filestore.t

val set_prepare_log_per_file : t -> bool -> unit
(** Footnote 10 ablation: write one prepare record per {e file} instead of
    one per volume. Default [false] (one per volume, the paper's intended
    design). *)

val prepare :
  t -> txid:Txid.t -> coordinator_site:int -> files:File_id.t list -> bool
(** Flush dirty pages, build intentions, write prepare log record(s) —
    one log I/O per involved volume (Figure 5 step 3). Returns the vote.
    Must run in a fiber. *)

val commit : t -> txid:Txid.t -> unit
(** Phase 2: apply every prepared intentions list (single-file commit) and
    drop the prepare log records. Idempotent — a retransmitted commit for
    an unknown transaction is a no-op (§4.4). Must run in a fiber. *)

val abort : t -> txid:Txid.t -> unit
(** Phase 2 abort: roll back volatile modifications if present, free
    flushed shadow pages, drop the log records. Idempotent. Must run in a
    fiber. *)

val is_prepared : t -> Txid.t -> bool

val prepared_transactions : t -> Txid.t list
(** Transactions currently prepared (in doubt) at this site. *)

val prepared_files : t -> Txid.t -> File_id.t list
(** Files named by the transaction's prepare records at this site. *)

val prepared_for_file : t -> File_id.t -> Txid.t list
(** Transactions prepared here whose intentions touch [fid] — what a
    freshly installed lock-manager must relock before granting anyone
    else (locus_shard double-crash protection). *)

val coordinator_of : t -> Txid.t -> int option
(** The coordinator site recorded with the transaction's prepare record,
    if it is prepared here. *)

val prepared_intentions : t -> Txid.t -> Intentions.t list

val recover : t -> (Txid.t * int) list
(** Reboot-time scan of all mounted volumes: rebuild the prepared table
    and return the in-doubt transactions with their coordinator sites.
    Charges one read I/O per surviving record. Must run in a fiber. *)

val crash : t -> unit
(** Drop the volatile table (the logs survive on their volumes). *)
