type t = Unix_access | Shared | Exclusive

let equal a b =
  match (a, b) with
  | Unix_access, Unix_access | Shared, Shared | Exclusive, Exclusive -> true
  | (Unix_access | Shared | Exclusive), _ -> false

let to_string = function
  | Unix_access -> "unix"
  | Shared -> "shared"
  | Exclusive -> "exclusive"

let pp ppf m = Fmt.string ppf (to_string m)

(* Mutation switch for the serializability checker's self-test
   (test_check.ml / `locusctl explore --break-locks`): when set, shared
   and exclusive locks wrongly coexist, which must surface as dirty reads
   and conflict cycles in `Locus_check`. Never set outside those tests. *)
let test_break_shared_exclusive = ref false

(* Figure 1: rows are the holder's mode, columns the other party's. *)
let access held other =
  match (held, other) with
  | Unix_access, Unix_access -> `Read_write
  | (Shared, Exclusive | Exclusive, Shared) when !test_break_shared_exclusive ->
    `Read
  | Unix_access, Shared -> `Read
  | Shared, Unix_access -> `Read
  | Shared, Shared -> `Read
  | Exclusive, (Unix_access | Shared | Exclusive)
  | (Unix_access | Shared), Exclusive ->
    `None

let compatible held requested = access held requested <> `None

let strength = function Unix_access -> 0 | Shared -> 1 | Exclusive -> 2
let stronger a b = strength a > strength b
let allows_read_by_other = function Unix_access | Shared -> true | Exclusive -> false
let allows_write_by_other = function Unix_access -> true | Shared | Exclusive -> false

let all = [ Unix_access; Shared; Exclusive ]

let figure_1 =
  List.map (fun row -> (row, List.map (fun col -> (col, access row col)) all)) all
