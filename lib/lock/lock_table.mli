(** The per-file lock list kept at the file's (primary) storage site
    (Figure 3, §5.1), with a FIFO wait queue.

    Pure local state: the kernel layers distribution on top (remote
    requests arrive by message, replies are cached at the requesting
    site). Blocking is expressed through grant callbacks so this module
    needs no scheduler dependency.

    Semantics implemented here:
    - same-owner locks never conflict: all member processes of one
      transaction share its locks (§3.1);
    - a lock request by an owner {e replaces} that owner's previous locks
      on the requested range — that is how ranges are extended, contracted,
      upgraded and downgraded (§3.2);
    - unlock by a transaction {e retains} the lock (two-phase locking,
      §3.3 rule 1) unless the lock was taken in non-transaction mode
      (§3.4); unlock by a non-transaction process releases it;
    - waiters are served in request order, but a waiter may overtake an
      earlier one whose requested range does not overlap or whose mode is
      compatible. *)

type t

type lock = {
  owner : Owner.t;
  pid : Pid.t;  (** the process that issued the request *)
  mode : Mode.t;
  range : Byte_range.t;
  non_transaction : bool;  (** §3.4 serializability-exception lock *)
  retained : bool;  (** unlocked by the program but held until commit *)
}

type waiter

val create : File_id.t -> t

val restore : File_id.t -> lock list -> t
(** Rebuild a table from transferred lock state — the receiving side of
    §5.2's lock-control migration. The wait queue does not transfer
    (waiter callbacks are site-local); senders must be waiter-free. *)

val fid : t -> File_id.t
val locks : t -> lock list
val lock_count : t -> int

val request :
  t ->
  owner:Owner.t ->
  pid:Pid.t ->
  mode:Mode.t ->
  range:Byte_range.t ->
  non_transaction:bool ->
  [ `Granted | `Conflict of Owner.t list ]
(** Non-blocking attempt. On [`Granted] the lock list is updated; on
    [`Conflict] it is untouched and the blocking owners are returned. *)

val enqueue :
  t ->
  owner:Owner.t ->
  pid:Pid.t ->
  mode:Mode.t ->
  range:Byte_range.t ->
  non_transaction:bool ->
  notify:(bool -> unit) ->
  waiter
(** Join the wait queue; [notify true] fires (once) when the lock is
    eventually installed, [notify false] if the wait is cancelled. Use
    after {!request} returned [`Conflict]. *)

val cancel : t -> waiter -> unit
(** Remove a waiter (requesting process died or timed out). Fires
    [notify false] if the waiter was still pending. *)

val cancel_owner : t -> Owner.t -> unit
(** Cancel every pending wait of the owner — used when the owning
    transaction is aborted out from under its blocked requests. *)

val unlock : t -> owner:Owner.t -> pid:Pid.t -> range:Byte_range.t -> unit
(** Explicit unlock of a range (see module doc for retention rules). *)

val release_owner : t -> Owner.t -> unit
(** Drop every lock of the owner — transaction commit or abort (§4.2
    releases "all corresponding retained locks"), or non-transaction
    process exit. Wakes eligible waiters. *)

val release_process : t -> Pid.t -> unit
(** Drop locks requested by a dead process on its own (non-transaction)
    behalf. Transaction-owned locks survive member-process exit. *)

(** {1 Access validation (conventional Unix access, Figure 1 row "Unix")} *)

val may_read : t -> reader:Owner.t -> range:Byte_range.t -> bool
val may_write : t -> writer:Owner.t -> range:Byte_range.t -> bool

val owner_covers :
  t -> owner:Owner.t -> range:Byte_range.t -> write:bool -> bool
(** Does [owner] hold locks covering all of [range], in modes sufficient
    for the given access? Used for implicit-lock decisions. *)

(** {1 Introspection} *)

val holders : t -> range:Byte_range.t -> Owner.t list
val retained_ranges : t -> Owner.t -> Byte_range.t list
val waiting : t -> int

val transferable : t -> bool
(** May this table ride a transfer envelope right now? True iff it has no
    live waiters — waiter callbacks are site-local and would be stranded
    by {!restore} on the receiving side. *)

val waits_for : t -> (Owner.t * Owner.t list) list
(** For each waiting request, the owners currently blocking it — the raw
    material for the wait-for graph (§3.1: deadlock detection is done
    outside the kernel from exported lock state). *)

val mark_retained : t -> Owner.t -> range:Byte_range.t -> unit
(** Force retention of the owner's locks on [range] (§3.3 rule 2 is
    enforced by the kernel when a transaction locks dirty records). *)

val pp : t Fmt.t
