type lock = {
  owner : Owner.t;
  pid : Pid.t;
  mode : Mode.t;
  range : Byte_range.t;
  non_transaction : bool;
  retained : bool;
}

type waiter = {
  w_owner : Owner.t;
  w_pid : Pid.t;
  w_mode : Mode.t;
  w_range : Byte_range.t;
  w_non_transaction : bool;
  w_notify : bool -> unit;
  mutable w_cancelled : bool;
}

type t = {
  fid : File_id.t;
  mutable locks : lock list;
  mutable waiters : waiter list;  (* FIFO: oldest first *)
}

let create fid = { fid; locks = []; waiters = [] }
let restore fid locks = { fid; locks; waiters = [] }
let fid t = t.fid
let locks t = t.locks
let lock_count t = List.length t.locks

let check_mode = function
  | Mode.Shared | Mode.Exclusive -> ()
  | Mode.Unix_access ->
    invalid_arg "Lock_table: Unix access is implicit, not a requestable mode"

let conflicts_with_locks t ~owner ~mode ~range =
  List.filter_map
    (fun l ->
      if
        (not (Owner.equal l.owner owner))
        && Byte_range.overlaps l.range range
        && not (Mode.compatible l.mode mode)
      then Some l.owner
      else None)
    t.locks

(* Split the owner's existing coverage out of [range], then add the new
   lock: one request extends, contracts, upgrades or downgrades in a single
   operation (§3.2). Exception: a transaction's re-lock never weakens
   protection it already holds (§3.3 rule 1 — all locks are kept until
   commit), so an exclusively-covered range stays exclusive when later
   re-requested shared; otherwise the transaction's uncommitted writes
   would become readable by others before commit. *)
let install t ~owner ~pid ~mode ~range ~non_transaction =
  let keep_stronger l =
    Owner.is_transaction owner
    && (not l.non_transaction)
    && Mode.stronger l.mode mode
  in
  let keep =
    List.concat_map
      (fun l ->
        if
          Owner.equal l.owner owner
          && Byte_range.overlaps l.range range
          && not (keep_stronger l)
        then
          List.map (fun r -> { l with range = r }) (Byte_range.diff l.range range)
        else [ l ])
      t.locks
  in
  t.locks <-
    { owner; pid; mode; range; non_transaction; retained = false } :: keep

let request t ~owner ~pid ~mode ~range ~non_transaction =
  check_mode mode;
  match conflicts_with_locks t ~owner ~mode ~range with
  | [] ->
    install t ~owner ~pid ~mode ~range ~non_transaction;
    `Granted
  | blockers -> `Conflict (List.sort_uniq Owner.compare blockers)

(* A pending earlier waiter blocks a later one on an overlapping range with
   an incompatible mode (different owner): no overtaking on contended
   records, which prevents writer starvation. *)
let blocked_by_earlier earlier w =
  List.exists
    (fun e ->
      (not e.w_cancelled)
      && (not (Owner.equal e.w_owner w.w_owner))
      && Byte_range.overlaps e.w_range w.w_range
      && not (Mode.compatible e.w_mode w.w_mode))
    earlier

let pump t =
  let rec go earlier_pending = function
    | [] -> List.rev earlier_pending
    | w :: rest ->
      if w.w_cancelled then go earlier_pending rest
      else if
        conflicts_with_locks t ~owner:w.w_owner ~mode:w.w_mode ~range:w.w_range = []
        && not (blocked_by_earlier earlier_pending w)
      then begin
        install t ~owner:w.w_owner ~pid:w.w_pid ~mode:w.w_mode ~range:w.w_range
          ~non_transaction:w.w_non_transaction;
        w.w_notify true;
        go earlier_pending rest
      end
      else go (w :: earlier_pending) rest
  in
  t.waiters <- go [] t.waiters

let enqueue t ~owner ~pid ~mode ~range ~non_transaction ~notify =
  check_mode mode;
  let w =
    {
      w_owner = owner;
      w_pid = pid;
      w_mode = mode;
      w_range = range;
      w_non_transaction = non_transaction;
      w_notify = notify;
      w_cancelled = false;
    }
  in
  t.waiters <- t.waiters @ [ w ];
  (* The lock state may have changed between the failed [request] and this
     call; try immediately. *)
  pump t;
  w

let cancel t w =
  if not w.w_cancelled then begin
    w.w_cancelled <- true;
    w.w_notify false
  end;
  t.waiters <- List.filter (fun x -> x != w) t.waiters;
  pump t

let cancel_owner t owner =
  List.iter
    (fun w ->
      if (not w.w_cancelled) && Owner.equal w.w_owner owner then begin
        w.w_cancelled <- true;
        w.w_notify false
      end)
    t.waiters;
  t.waiters <- List.filter (fun w -> not w.w_cancelled) t.waiters;
  pump t

(* Unlock: transactions retain (2PL, §3.3 rule 1) unless the lock was a
   non-transaction lock (§3.4); non-transaction owners release. *)
let unlock t ~owner ~pid ~range =
  ignore pid;
  let keep_retained = Owner.is_transaction owner in
  t.locks <-
    List.concat_map
      (fun l ->
        if not (Owner.equal l.owner owner && Byte_range.overlaps l.range range)
        then [ l ]
        else if keep_retained && not l.non_transaction then begin
          let out = List.map (fun r -> { l with range = r }) (Byte_range.diff l.range range) in
          match Byte_range.inter l.range range with
          | Some r -> { l with range = r; retained = true } :: out
          | None -> out
        end
        else List.map (fun r -> { l with range = r }) (Byte_range.diff l.range range))
      t.locks;
  pump t

let release_owner t owner =
  t.locks <- List.filter (fun l -> not (Owner.equal l.owner owner)) t.locks;
  pump t

let release_process t pid =
  t.locks <-
    List.filter
      (fun l -> Owner.is_transaction l.owner || not (Pid.equal l.pid pid))
      t.locks;
  t.waiters <-
    List.filter
      (fun w ->
        if Pid.equal w.w_pid pid then begin
          w.w_cancelled <- true;
          w.w_notify false;
          false
        end
        else true)
      t.waiters;
  pump t

let may_read t ~reader ~range =
  List.for_all
    (fun l ->
      Owner.equal l.owner reader
      || (not (Byte_range.overlaps l.range range))
      || Mode.allows_read_by_other l.mode)
    t.locks

let may_write t ~writer ~range =
  List.for_all
    (fun l ->
      Owner.equal l.owner writer
      || (not (Byte_range.overlaps l.range range))
      || Mode.allows_write_by_other l.mode)
    t.locks

let owner_covers t ~owner ~range ~write =
  let sufficient (m : Mode.t) =
    match m with
    | Mode.Exclusive -> true
    | Mode.Shared -> not write
    | Mode.Unix_access -> false
  in
  let covered =
    List.fold_left
      (fun acc l ->
        if Owner.equal l.owner owner && sufficient l.mode then
          Range_set.add l.range acc
        else acc)
      Range_set.empty t.locks
  in
  Range_set.subsumes covered range

let holders t ~range =
  List.filter_map
    (fun l -> if Byte_range.overlaps l.range range then Some l.owner else None)
    t.locks
  |> List.sort_uniq Owner.compare

let retained_ranges t owner =
  List.filter_map
    (fun l -> if Owner.equal l.owner owner && l.retained then Some l.range else None)
    t.locks
  |> List.sort Byte_range.compare

let waiting t = List.length (List.filter (fun w -> not w.w_cancelled) t.waiters)

(* A table may ride a transfer envelope only when no waiter would be
   stranded: waiter callbacks are site-local closures, so [restore] on
   the receiving side necessarily drops them. *)
let transferable t = waiting t = 0

let waits_for t =
  let rec go earlier acc = function
    | [] -> List.rev acc
    | w :: rest ->
      if w.w_cancelled then go earlier acc rest
      else begin
        let lock_blockers =
          conflicts_with_locks t ~owner:w.w_owner ~mode:w.w_mode ~range:w.w_range
        in
        let waiter_blockers =
          List.filter_map
            (fun e ->
              if
                (not e.w_cancelled)
                && (not (Owner.equal e.w_owner w.w_owner))
                && Byte_range.overlaps e.w_range w.w_range
                && not (Mode.compatible e.w_mode w.w_mode)
              then Some e.w_owner
              else None)
            earlier
        in
        let blockers = List.sort_uniq Owner.compare (lock_blockers @ waiter_blockers) in
        go (w :: earlier) ((w.w_owner, blockers) :: acc) rest
      end
  in
  go [] [] t.waiters

let mark_retained t owner ~range =
  t.locks <-
    List.concat_map
      (fun l ->
        if
          Owner.equal l.owner owner
          && Byte_range.overlaps l.range range
          && not l.retained
        then begin
          let out =
            List.map (fun r -> { l with range = r }) (Byte_range.diff l.range range)
          in
          match Byte_range.inter l.range range with
          | Some r -> { l with range = r; retained = true } :: out
          | None -> out
        end
        else [ l ])
      t.locks

let pp_lock ppf l =
  Fmt.pf ppf "%a %a %a%s%s" Owner.pp l.owner Mode.pp l.mode Byte_range.pp l.range
    (if l.retained then " retained" else "")
    (if l.non_transaction then " non-txn" else "")

let pp ppf t =
  Fmt.pf ppf "@[<v>locks(%a):@,%a@,waiting: %d@]" File_id.pp t.fid
    Fmt.(list ~sep:cut pp_lock)
    t.locks (waiting t)
