(** Locking modes and the compatibility rules of Figure 1.

    [Unix] stands for conventional un-synchronized Unix access: a process
    touching a byte range without locking behaves as a [Unix]-mode holder
    of that range for the duration of the access. [Shared] permits
    concurrent readers (locked or conventional); [Exclusive] permits
    nothing else. Locks held by the same owner are always compatible with
    each other — in particular every process of one transaction may lock
    the same record exclusively (§3.1). *)

type t = Unix_access | Shared | Exclusive

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

val compatible : t -> t -> bool
(** [compatible held requested] — Figure 1 reduced to a grant decision:
    may a lock in mode [requested] coexist with a {e different} owner's
    lock in mode [held]? *)

val stronger : t -> t -> bool
(** [stronger a b] — does [a] grant strictly more protection than [b]?
    [Exclusive > Shared > Unix_access]. *)

val access : t -> t -> [ `Read_write | `Read | `None ]
(** The full Figure 1 cell: what access a holder of the first mode retains
    alongside a holder of the second. *)

val allows_read_by_other : t -> bool
(** May another owner read bytes covered by a lock in this mode? *)

val allows_write_by_other : t -> bool
(** May another owner write bytes covered by a lock in this mode? *)

val figure_1 : (t * (t * [ `Read_write | `Read | `None ]) list) list
(** The complete matrix, row-major, for the E1 reproduction. *)

val test_break_shared_exclusive : bool ref
(** Checker self-test only: while [true], shared and exclusive locks are
    (wrongly) mutually compatible — an injected Figure-1 bug that
    [Locus_check] must catch as unpermitted serializability violations.
    Leave [false] everywhere else. *)
