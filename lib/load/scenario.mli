(** Scenario scripts: arrival shape + op mix + timed fault events.

    A scenario composes an open-loop {!Arrival.shape} with the cluster's
    existing fault machinery on a virtual-time script: partition a site
    in the middle of a flash crowd, roll restarts across the cluster
    under steady load, crash a replica host and let it rebuild while
    traffic keeps arriving. The driver replays the events at their
    stamped times, so a scenario run is as deterministic as any other.

    The textual form (one directive per line, [#] comments) is what
    [locusctl load --scenario-file] parses; HACKING.md documents it:

    {v
    rate 200                      # base arrivals/sec
    diurnal 0.5 2000000           # amplitude period_us
    flash 1500000 300000 4.0      # at_us len_us mult
    keys 64                       # record universe
    zipf 1.0                      # popularity exponent
    mix 0.5 2 4                   # read_frac ops_min ops_max
    remote 0.1                    # cross-stripe op probability
    crash 800000 300000 1         # at_us restart_after_us victim
    partition 1600000 200000 2    # at_us heal_after_us victim
    rolling 1000000 150000 250000 # at_us stagger_us down_us
    v} *)

type event =
  | Crash of { at_us : int; restart_after_us : int; victim : int }
      (** Crash [victim] at [at_us]; restart after [restart_after_us].
          With replication on, the restart is a replica rebuild under
          load: the site reconciles its stale copies while traffic keeps
          arriving. *)
  | Partition of { at_us : int; heal_after_us : int; victim : int }
  | Rolling of { at_us : int; stagger_us : int; down_us : int }
      (** Rolling site restarts: sites [1 .. n-1] (never site 0, which
          hosts the generator's bookkeeping) each crash for [down_us],
          staggered [stagger_us] apart. *)

type t = {
  arrival : Arrival.shape;
  mix : Opmix.t;
  keys : int;  (** distinct records under load, striped across sites *)
  zipf_s : float;  (** popularity exponent within a site's stripe *)
  remote_frac : float;
      (** probability an op targets another site's stripe instead of the
          transaction's home stripe — pure local traffic at 0, all-sites
          2PC churn as it approaches 1 (directive: [remote 0.1]) *)
  events : event list;
}

val default : t
(** Steady 12/s Poisson over 192 keys (under the ~15/s 3-site saturation
    knee — the no-wait sojourn is ~0.5s of virtual disk time per
    transaction), 80/20 read mix, no faults. *)

val builtin : string -> t option
(** Named presets: ["steady"], ["diurnal"], ["flash"],
    ["flash-partition"], ["rolling"], ["rebuild"]. *)

val builtin_names : string list

val parse : string -> (t, string) result
(** Parse the textual form. Unknown directives and malformed arity are
    errors naming the offending line. *)

val pp : t Fmt.t
