type shape = {
  base_per_sec : float;
  diurnal_amplitude : float;
  diurnal_period_us : int;
  flash_at_us : int;
  flash_len_us : int;
  flash_mult : float;
}

let constant r =
  {
    base_per_sec = r;
    diurnal_amplitude = 0.;
    diurnal_period_us = 0;
    flash_at_us = -1;
    flash_len_us = 0;
    flash_mult = 1.;
  }

(* Clamp the knobs once, at the rate function, so a hand-built shape with
   amplitude >= 1 or mult < 1 cannot drive λ(t) negative or above the
   thinning envelope (either would break termination or exactness). *)
let amp s = Float.min 0.999 (Float.max 0. s.diurnal_amplitude)
let mult s = Float.max 1. s.flash_mult

let in_flash s t =
  s.flash_at_us >= 0 && t >= s.flash_at_us && t < s.flash_at_us + s.flash_len_us

let rate_at s t =
  let base = Float.max 0. s.base_per_sec in
  let diurnal =
    if s.diurnal_period_us <= 0 || amp s = 0. then 1.
    else
      let phase =
        2. *. Float.pi
        *. (float_of_int (t mod s.diurnal_period_us)
           /. float_of_int s.diurnal_period_us)
      in
      1. +. (amp s *. sin phase)
  in
  let flash = if in_flash s t then mult s else 1. in
  base *. diurnal *. flash

let peak_rate s = Float.max 0. s.base_per_sec *. (1. +. amp s) *. mult s

type t = { shp : shape; prng : Prng.t }

let create ~prng shp = { shp; prng }
let shape t = t.shp

(* Lewis–Shedler thinning: candidate instants form a homogeneous Poisson
   process at the peak rate; each candidate at time u survives with
   probability λ(u)/peak. Survivors are exactly a non-homogeneous Poisson
   process with intensity λ. The candidate step is at least 1 µs so the
   virtual clock always advances (the engine's granularity). *)
let next_after t now =
  let peak = peak_rate t.shp in
  if peak <= 0. then max_int
  else begin
    let mean_us = 1e6 /. peak in
    let u = ref now in
    let accepted = ref (-1) in
    while !accepted < 0 do
      let step = int_of_float (Float.ceil (Prng.exponential t.prng ~mean:mean_us)) in
      u := !u + max 1 step;
      if Prng.float t.prng 1.0 *. peak < rate_at t.shp !u then accepted := !u
    done;
    !accepted
  end
