type op = Read of int | Update of int

type t = { read_frac : float; ops_min : int; ops_max : int }

let default = { read_frac = 0.5; ops_min = 2; ops_max = 4 }

let make ?(read_frac = 0.5) ?(ops_min = 2) ?(ops_max = 4) () =
  let read_frac = Float.min 1. (Float.max 0. read_frac) in
  let ops_min = max 1 ops_min in
  let ops_max = max ops_min ops_max in
  { read_frac; ops_min; ops_max }

let gen_txn t prng zipf =
  let n = Prng.int_in prng ~lo:t.ops_min ~hi:t.ops_max in
  List.init n (fun _ ->
      let r = Zipf.sample zipf prng in
      if Prng.float prng 1.0 < t.read_frac then Read r else Update r)

let pp_op ppf = function
  | Read r -> Fmt.pf ppf "r%d" r
  | Update r -> Fmt.pf ppf "u%d" r
