(** Configurable transaction op mixes for the traffic engine.

    A mix fixes the read/update ratio and the transaction-size range;
    record targets come from a {!Zipf} popularity distribution. The op
    type is deliberately tiny and self-contained so both the open-loop
    driver (which replays ops against {!Locus_core.Api}) and the checker
    workloads (which convert to their own op type) can consume it. *)

type op = Read of int | Update of int  (** 0-based record rank *)

type t = {
  read_frac : float;  (** probability an op is a read, in [0, 1] *)
  ops_min : int;  (** minimum ops per transaction (>= 1) *)
  ops_max : int;  (** maximum ops per transaction (inclusive) *)
}

val default : t
(** 50/50 reads and updates, 2–4 ops per transaction. *)

val make : ?read_frac:float -> ?ops_min:int -> ?ops_max:int -> unit -> t
(** Clamps out-of-range arguments instead of raising. *)

val gen_txn : t -> Prng.t -> Zipf.t -> op list
(** One transaction's ops: size uniform in [ops_min, ops_max], each op a
    read with probability [read_frac], target drawn from the Zipfian. *)

val pp_op : op Fmt.t
