(** Zipfian popularity over a fixed key universe.

    Key [k] (0-based rank) is drawn with probability proportional to
    [1 / (k+1)^s]. At [s = 1] over 100 keys the most popular key takes
    [1/H_100 ≈ 19.3%] of the traffic — the skew that makes hot-record
    lock queues and shard migrations actually fire under load. Sampling
    is one uniform draw plus a binary search over the precomputed CDF. *)

type t

val create : ?s:float -> n:int -> unit -> t
(** [n >= 1] keys with exponent [s] (default 1.0; [s = 0] is uniform). *)

val n : t -> int
val exponent : t -> float

val pmf : t -> int -> float
(** Probability of rank [k] (0-based); 0 outside [0, n). *)

val sample : t -> Prng.t -> int
(** Draw a rank in [0, n). *)
