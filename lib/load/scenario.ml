type event =
  | Crash of { at_us : int; restart_after_us : int; victim : int }
  | Partition of { at_us : int; heal_after_us : int; victim : int }
  | Rolling of { at_us : int; stagger_us : int; down_us : int }

type t = {
  arrival : Arrival.shape;
  mix : Opmix.t;
  keys : int;
  zipf_s : float;
  remote_frac : float;
  events : event list;
}

(* Under the 3-site saturation knee for this mix (see EXPERIMENTS.md
   E21): a transaction's no-wait sojourn is ~0.5s of virtual disk time
   (opens, cold record reads, and a multi-disk-force commit at 25ms per
   I/O), which caps the cluster near ~15 txn/s. At 12/s completed tracks
   offered and sojourn sits on that floor; the flash presets multiply
   through the knee on purpose, which is where queues grow and the abort
   taxonomy (deadlock, crash, coordinator-lost) fills in. *)
let default =
  {
    arrival = Arrival.constant 12.;
    mix = Opmix.make ~read_frac:0.8 ();
    keys = 192;
    zipf_s = 1.0;
    remote_frac = 0.1;
    events = [];
  }

(* Presets exercise each composition the issue names: arrival shapes
   alone, then the same shapes with faults landing mid-load. Times are
   chosen so the fault window overlaps the interesting arrival phase
   (the partition opens inside the flash crowd, not after it). *)
let builtin = function
  | "steady" -> Some default
  | "diurnal" ->
    Some
      {
        default with
        arrival =
          {
            (Arrival.constant 12.) with
            Arrival.diurnal_amplitude = 0.5;
            diurnal_period_us = 2_000_000;
          };
      }
  | "flash" ->
    Some
      {
        default with
        arrival =
          {
            (Arrival.constant 12.) with
            Arrival.flash_at_us = 1_500_000;
            flash_len_us = 400_000;
            flash_mult = 4.;
          };
      }
  | "flash-partition" ->
    Some
      {
        default with
        arrival =
          {
            (Arrival.constant 12.) with
            Arrival.flash_at_us = 1_500_000;
            flash_len_us = 400_000;
            flash_mult = 4.;
          };
        events =
          [ Partition { at_us = 1_600_000; heal_after_us = 200_000; victim = 2 } ];
      }
  | "rolling" ->
    Some
      {
        default with
        events = [ Rolling { at_us = 800_000; stagger_us = 400_000; down_us = 250_000 } ];
      }
  | "rebuild" ->
    Some
      {
        default with
        events = [ Crash { at_us = 800_000; restart_after_us = 400_000; victim = 1 } ];
      }
  | _ -> None

let builtin_names = [ "steady"; "diurnal"; "flash"; "flash-partition"; "rolling"; "rebuild" ]

let parse text =
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_line acc lineno line =
    match acc with
    | Error _ -> acc
    | Ok sc -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      with
      | [] -> acc
      | directive :: args -> (
        let num s =
          match int_of_string_opt s with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "expected integer, got %S" s)
        in
        let fnum s =
          match float_of_string_opt s with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "expected number, got %S" s)
        in
        let ( let* ) r f = match r with Ok v -> f v | Error e -> err lineno e in
        match (directive, args) with
        | "rate", [ r ] ->
          let* r = fnum r in
          Ok { sc with arrival = { sc.arrival with Arrival.base_per_sec = r } }
        | "diurnal", [ a; p ] ->
          let* a = fnum a in
          let* p = num p in
          Ok
            {
              sc with
              arrival =
                { sc.arrival with Arrival.diurnal_amplitude = a; diurnal_period_us = p };
            }
        | "flash", [ at; len; m ] ->
          let* at = num at in
          let* len = num len in
          let* m = fnum m in
          Ok
            {
              sc with
              arrival =
                { sc.arrival with Arrival.flash_at_us = at; flash_len_us = len; flash_mult = m };
            }
        | "keys", [ k ] ->
          let* k = num k in
          Ok { sc with keys = max 1 k }
        | "zipf", [ s ] ->
          let* s = fnum s in
          Ok { sc with zipf_s = s }
        | "remote", [ f ] ->
          let* f = fnum f in
          Ok { sc with remote_frac = Float.min 1. (Float.max 0. f) }
        | "mix", [ rf; omin; omax ] ->
          let* rf = fnum rf in
          let* omin = num omin in
          let* omax = num omax in
          Ok { sc with mix = Opmix.make ~read_frac:rf ~ops_min:omin ~ops_max:omax () }
        | "crash", [ at; restart; v ] ->
          let* at = num at in
          let* restart = num restart in
          let* v = num v in
          Ok
            {
              sc with
              events = sc.events @ [ Crash { at_us = at; restart_after_us = restart; victim = v } ];
            }
        | "partition", [ at; heal; v ] ->
          let* at = num at in
          let* heal = num heal in
          let* v = num v in
          Ok
            {
              sc with
              events = sc.events @ [ Partition { at_us = at; heal_after_us = heal; victim = v } ];
            }
        | "rolling", [ at; stagger; down ] ->
          let* at = num at in
          let* stagger = num stagger in
          let* down = num down in
          Ok
            {
              sc with
              events = sc.events @ [ Rolling { at_us = at; stagger_us = stagger; down_us = down } ];
            }
        | d, args ->
          err lineno
            (Printf.sprintf "unknown directive %S (with %d args)" d (List.length args))))
  in
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.fold_left (fun acc (lineno, line) -> parse_line acc lineno line) (Ok default)

let pp_event ppf = function
  | Crash { at_us; restart_after_us; victim } ->
    Fmt.pf ppf "crash site %d at %dus (restart +%dus)" victim at_us restart_after_us
  | Partition { at_us; heal_after_us; victim } ->
    Fmt.pf ppf "partition site %d at %dus (heal +%dus)" victim at_us heal_after_us
  | Rolling { at_us; stagger_us; down_us } ->
    Fmt.pf ppf "rolling restarts from %dus (stagger %dus, down %dus)" at_us stagger_us
      down_us

let pp ppf t =
  Fmt.pf ppf "@[<v>rate %.1f/s (peak %.1f/s), %d keys, zipf %.2f, remote %.0f%%@,%a@]"
    t.arrival.Arrival.base_per_sec (Arrival.peak_rate t.arrival) t.keys t.zipf_s
    (100. *. t.remote_frac)
    (Fmt.list ~sep:Fmt.cut pp_event)
    t.events
