type t = { n : int; s : float; cdf : float array }

let create ?(s = 1.0) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  let s = Float.max 0. s in
  let w = Array.init n (fun k -> 1. /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0. w in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (w.(k) /. total);
    cdf.(k) <- !acc
  done;
  (* Guard against float round-off leaving the last edge below 1. *)
  cdf.(n - 1) <- 1.;
  { n; s; cdf }

let n t = t.n
let exponent t = t.s

let pmf t k =
  if k < 0 || k >= t.n then 0.
  else if k = 0 then t.cdf.(0)
  else t.cdf.(k) -. t.cdf.(k - 1)

let sample t prng =
  let u = Prng.float prng 1.0 in
  (* Smallest k with cdf.(k) > u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
