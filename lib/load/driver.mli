(** Open-loop traffic driver: replay a {!Scenario} against a live cluster.

    The driver spawns one transaction process per arrival instant,
    whether or not earlier transactions have finished — offered load is a
    property of the scenario, completed load a property of the system.
    Each transaction wraps its whole life (spawn at the arrival instant
    through commit/abort) in a ["load.txn"] {!Locus_otrace.Otrace} span,
    so sojourn percentiles come from the collector's bounded phase
    histograms rather than unbounded sample series.

    Every random draw (arrival instants, op mixes, key popularity, site
    routing) comes from one seed-derived {!Prng}, and fault events fire
    at scripted virtual times, so a run — including its JSON report — is
    byte-deterministic per seed. *)

type config = {
  sites : int;
  replicas : int;  (** replication factor; <= 1 = unreplicated *)
  duration_us : int;  (** arrivals stop after this much virtual time *)
  scenario : Scenario.t;
  seed : int;
}

val default_config : config
(** 3 sites, unreplicated, 3 virtual seconds of {!Scenario.default}. *)

type report = {
  offered : int;  (** arrival instants generated *)
  completed : int;  (** transactions that committed *)
  aborted : int;  (** transactions that aborted (any reason) *)
  shed : int;  (** arrivals dropped because no site was reachable *)
  offered_per_sec : float;  (** offered / arrival-window duration *)
  completed_per_sec : float;
      (** sustained: completions over the whole run including the
          post-window drain, so past saturation this converges on the
          system's capacity rather than inflating *)
  sojourn_p50_us : int;
  sojourn_p99_us : int;
  sojourn_p999_us : int;
  aborts : (string * int) list;
      (** abort taxonomy from the [txn.abort.*] counters, label-sorted,
          zero-count reasons omitted *)
  events_fired : int;  (** engine events dispatched during the run *)
  virtual_us : int;  (** virtual clock at drain *)
}

val run : config -> report * Locus_core.Locus.sim
(** Execute the scenario to quiescence and summarize. The returned sim is
    drained; checkers (e.g. {!Locus_check}'s oracles) can inspect it. *)

val pp_report : report Fmt.t
