module L = Locus_core.Locus
module Api = Locus_core.Api
module K = Locus_core.Kernel
module Otrace = Locus_otrace.Otrace
module Transport = Locus_net.Transport

type config = {
  sites : int;
  replicas : int;
  duration_us : int;
  scenario : Scenario.t;
  seed : int;
}

let default_config =
  { sites = 3; replicas = 1; duration_us = 3_000_000; scenario = Scenario.default; seed = 0 }

type report = {
  offered : int;
  completed : int;
  aborted : int;
  shed : int;
  offered_per_sec : float;
  completed_per_sec : float;
  sojourn_p50_us : int;
  sojourn_p99_us : int;
  sojourn_p999_us : int;
  aborts : (string * int) list;
  events_fired : int;
  virtual_us : int;
}

let rec_len = 16
let path_of i = Printf.sprintf "/load/records%d" i
let encode v = Printf.sprintf "%016d" v
let decode b = int_of_string (String.trim (Bytes.to_string b))

(* Records are striped one file per site (file [i] lives on volume [i],
   hosted at site [i]); each file holds its own Zipfian key universe. A
   transaction works its home site's stripe except for a [remote_frac]
   cross-stripe minority, so the hottest keys contend in parallel at
   every site (instead of serializing on one storage site's disk) while
   the remote tail keeps genuine multi-site 2PC in the mix — and a
   scripted crash of any site takes out real traffic. Ops arrive as
   [(stripe, op)] with the op's rank local to that stripe's file. *)
let run_ops env ~stripes ops =
  let chans = Array.make stripes (-1) in
  let chan i =
    if chans.(i) < 0 then chans.(i) <- Api.open_file env (path_of i);
    chans.(i)
  in
  Api.begin_trans env;
  List.iter
    (fun (stripe, op) ->
      let c = chan stripe in
      let pos = (match op with Opmix.Read r | Opmix.Update r -> r) * rec_len in
      match op with
      | Opmix.Read _ ->
        Api.seek env c ~pos;
        ignore (Api.lock env c ~len:rec_len ~mode:Locus_lock.Mode.Shared ());
        ignore (Api.pread env c ~pos ~len:rec_len)
      | Opmix.Update _ ->
        Api.seek env c ~pos;
        ignore (Api.lock env c ~len:rec_len ~mode:Locus_lock.Mode.Exclusive ());
        let v = decode (Api.pread env c ~pos ~len:rec_len) in
        Api.pwrite env c ~pos (Bytes.of_string (encode (v + 1))))
    ops;
  let outcome = Api.end_trans env in
  Array.iter (fun c -> if c >= 0 then Api.close env c) chans;
  outcome

let install_events cl events ~n_sites =
  let eng = K.engine cl in
  let net = K.transport cl in
  let clamp v = max 0 v in
  List.iter
    (fun ev ->
      match ev with
      | Scenario.Crash { at_us; restart_after_us; victim } when victim < n_sites ->
        Engine.schedule ~delay:(clamp at_us) eng (fun () ->
            K.crash_site cl victim;
            Engine.schedule ~delay:(clamp restart_after_us) eng (fun () ->
                K.restart_site cl victim))
      | Scenario.Partition { at_us; heal_after_us; victim } when victim < n_sites ->
        Engine.schedule ~delay:(clamp at_us) eng (fun () ->
            Transport.partition net [ [ victim ] ];
            Engine.schedule ~delay:(clamp heal_after_us) eng (fun () ->
                Transport.heal net))
      | Scenario.Rolling { at_us; stagger_us; down_us } ->
        (* Never roll site 0: the scenario driver's records file and its
           name binding live there, and a generator that kills its own
           ground truth measures nothing. *)
        for i = 1 to n_sites - 1 do
          Engine.schedule
            ~delay:(clamp (at_us + ((i - 1) * clamp stagger_us)))
            eng
            (fun () ->
              K.crash_site cl i;
              Engine.schedule ~delay:(clamp down_us) eng (fun () ->
                  K.restart_site cl i))
        done
      | Scenario.Crash _ | Scenario.Partition _ -> ())
    events

let run cfg =
  let sites = max 1 cfg.sites in
  let sc = cfg.scenario in
  let config =
    if cfg.replicas > 1 then K.Config.with_replication ~n_sites:sites ~factor:cfg.replicas
    else K.Config.default ~n_sites:sites
  in
  let sim = L.make ~seed:cfg.seed ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  let eng = K.engine cl in
  let net = K.transport cl in
  let otr = Otrace.create eng in
  K.set_otracer cl (Some otr);
  (* One generator PRNG, derived from the run seed but independent of the
     engine's own stream, feeds arrivals, mixes, popularity and routing. *)
  let gen_prng = Prng.create ~seed:(cfg.seed lxor 0x10ad) in
  let arr = Arrival.create ~prng:gen_prng sc.Scenario.arrival in
  let per_stripe = (sc.Scenario.keys + sites - 1) / sites in
  let zipf = Zipf.create ~s:sc.Scenario.zipf_s ~n:per_stripe () in
  let offered = ref 0 in
  let completed = ref 0 in
  let aborted = ref 0 in
  let shed = ref 0 in
  let last_done = ref 0 in
  let launch () =
    incr offered;
    (* Route to a live site: start from a popularity-independent uniform
       pick, scan forward deterministically past down sites. The PRNG
       draws below happen unconditionally (even for shed arrivals) so the
       stream stays aligned regardless of fault timing. *)
    let home = Prng.int gen_prng sites in
    let ops =
      List.map
        (fun op ->
          let stripe =
            if sites > 1 && Prng.float gen_prng 1.0 < sc.Scenario.remote_frac then
              (home + 1 + Prng.int gen_prng (sites - 1)) mod sites
            else home
          in
          (stripe, op))
        (Opmix.gen_txn sc.Scenario.mix gen_prng zipf)
    in
    let rec pick i =
      if i = sites then None
      else
        let s = (home + i) mod sites in
        if Transport.site_up net s then Some s else pick (i + 1)
    in
    match pick 0 with
    | None -> incr shed
    | Some site ->
      let n = !offered in
      ignore
        (Api.spawn_process cl ~site
           ~name:(Printf.sprintf "ld-txn-%d" n)
           (fun env ->
             Otrace.with_span otr ~site ~cat:"load" "load.txn" (fun () ->
                 (match run_ops env ~stripes:sites ops with
                 | K.Committed -> incr completed
                 | K.Aborted -> incr aborted
                 | exception (Api.Error _ | Api.Process_failure _) -> incr aborted);
                 last_done := Engine.now eng)))
  in
  (* Open loop: the next arrival is armed from the arrival process alone —
     never from a completion — so offered load is independent of how the
     cluster is coping. [t0] is the arrival epoch: creating the records
     file costs real (virtual) disk time, so the window only opens once
     the data exists, and scenario times are relative to that epoch. *)
  let t0 = ref 0 in
  let rec arm from_us =
    let next = Arrival.next_after arr from_us in
    if next <= cfg.duration_us then
      Engine.schedule ~delay:(!t0 + next - Engine.now eng) eng (fun () ->
          launch ();
          arm next)
  in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"ld-init" (fun env ->
         for i = 0 to sites - 1 do
           let c = Api.creat env (path_of i) ~vid:i in
           let init = Buffer.create (per_stripe * rec_len) in
           for _ = 1 to per_stripe do
             Buffer.add_string init (encode 0)
           done;
           Api.write_string env c (Buffer.contents init);
           Api.close env c
         done;
         t0 := Engine.now eng;
         (* Scenario event times share the arrival epoch, so "partition at
            1.6s" lands inside "flash crowd at 1.5s" as scripted. *)
         install_events cl sc.Scenario.events ~n_sites:sites;
         arm 0));
  L.run sim;
  let stats = Engine.stats eng in
  let dur_s = float_of_int (max 1 cfg.duration_us) /. 1e6 in
  (* Sustained service rate: completions over the window from the arrival
     epoch to the later of window close and the last transaction leaving
     the system. Below saturation this tracks the offered rate; past the
     knee the drain extends the window and the rate converges on capacity
     instead of inflating. Recovery timers idling after the last
     completion (crash/partition scenarios) don't dilute it. *)
  let active_s =
    float_of_int (max 1 (max cfg.duration_us (!last_done - !t0))) /. 1e6
  in
  let soj = Otrace.phase otr "load.txn" in
  let q p = match soj with Some h -> Stats.Hist.quantile h p | None -> 0 in
  let qpm pm = match soj with Some h -> Stats.Hist.quantile_permille h pm | None -> 0 in
  let aborts =
    List.filter_map
      (fun label ->
        let v = Stats.get stats ("txn.abort." ^ label) in
        if v > 0 then Some (label, v) else None)
      [ "coordinator_lost"; "crash"; "deadlock"; "degraded_vote"; "orphan"; "user" ]
  in
  ( {
      offered = !offered;
      completed = !completed;
      aborted = !aborted;
      shed = !shed;
      offered_per_sec = float_of_int !offered /. dur_s;
      completed_per_sec = float_of_int !completed /. active_s;
      sojourn_p50_us = q 50;
      sojourn_p99_us = q 99;
      sojourn_p999_us = qpm 999;
      aborts;
      events_fired = Engine.events_fired eng;
      virtual_us = Engine.now eng;
    },
    sim )

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>offered %d (%.1f/s), completed %d (%.1f/s), aborted %d, shed %d@,\
     sojourn p50 %dus p99 %dus p999 %dus@,\
     aborts: %a@,\
     %d engine events, %dus virtual@]"
    r.offered r.offered_per_sec r.completed r.completed_per_sec r.aborted r.shed
    r.sojourn_p50_us r.sojourn_p99_us r.sojourn_p999_us
    Fmt.(list ~sep:sp (pair ~sep:(any "=") string int))
    r.aborts r.events_fired r.virtual_us
