(** Deterministic open-loop arrival processes.

    A shape describes the instantaneous offered rate λ(t) in arrivals per
    second of virtual time: a Poisson base rate, optionally modulated by a
    diurnal sinusoid and by a flash-crowd burst window. Arrival instants
    are drawn by Lewis–Shedler thinning against the shape's peak rate, so
    the stream is an exact non-homogeneous Poisson process — and, because
    every draw comes from the sim {!Prng}, a pure function of the seed.

    Open-loop means these instants do not depend on the system under
    load: a transaction arrives whether or not the previous one finished,
    which is the regime where queues actually build (see DESIGN.md §7). *)

type shape = {
  base_per_sec : float;  (** mean offered rate λ₀ (arrivals / virtual second) *)
  diurnal_amplitude : float;
      (** sinusoidal modulation depth in [0, 1): λ(t) swings between
          λ₀(1-a) and λ₀(1+a). 0 disables. *)
  diurnal_period_us : int;  (** period of the sinusoid; <= 0 disables *)
  flash_at_us : int;  (** flash-crowd burst start; < 0 disables *)
  flash_len_us : int;  (** burst duration *)
  flash_mult : float;  (** rate multiplier during the burst (>= 1) *)
}

val constant : float -> shape
(** Plain homogeneous Poisson at the given rate. *)

val rate_at : shape -> int -> float
(** λ(t): the instantaneous rate at virtual time [t] (µs). *)

val peak_rate : shape -> float
(** Upper bound on λ(t) over all t — the thinning envelope. *)

type t

val create : prng:Prng.t -> shape -> t
(** The process draws from [prng] (and only from it), so two processes
    built over generators with equal state produce equal streams. *)

val shape : t -> shape

val next_after : t -> int -> int
(** [next_after t now] is the next arrival instant strictly after [now]
    (µs). Successive calls with each previous result enumerate the
    arrival stream. *)
