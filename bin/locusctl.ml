(* locusctl — drive scripted scenarios on a simulated Locus cluster from
   the command line.

     locusctl bank --sites 4 --tellers 8 --transfers 6
     locusctl chaos --orders 20 --crash-at 4.0
     locusctl deadlock --cycle 5
     locusctl stats --sites 3

   Every run is deterministic for a given --seed. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode
open Cmdliner

let print_summary sim =
  let stats = L.Engine.stats sim.L.engine in
  Fmt.pr "@.--- run summary ---@.";
  Fmt.pr "virtual time: %.2f s@."
    (float_of_int (L.Engine.now sim.L.engine) /. 1_000_000.);
  List.iter
    (fun key ->
      let v = L.Stats.get stats key in
      if v > 0 then Fmt.pr "%-24s %d@." key v)
    [
      "txn.begun"; "txn.committed"; "txn.aborted"; "txn.abort.deadlock";
      "2pc.prepares"; "lock.requests"; "lock.waits"; "lock.implicit";
      "lock.piggyback"; "lock.piggyback_reads"; "deadlock.scans";
      "deadlock.victims"; "proc.forks"; "proc.migrations"; "merge.retries";
      "disk.io.read"; "disk.io.write"; "disk.io.log"; "log.group_forces";
      "log.forces_saved"; "net.msg"; "net.msg_saved"; "rpc.batches";
      "rpc.batched"; "cache.hit"; "cache.miss"; "recovery.replayed_commit";
      "recovery.replayed_abort"; "replica.propagate"; "replica.propagate_miss";
      "replica.apply"; "replica.gaps"; "replica.reconciled";
      "replica.reconcile_passes"; "replica.failover_reads";
      "replica.local_reads";
    ]

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"CATS"
        ~doc:
          "Enable execution tracing and print the tail of the trace. CATS is \
           'all' or a comma list of net,disk,lock,txn,proc,fs,recovery.")

let setup_trace sim = function
  | None -> ()
  | Some spec ->
    let categories =
      if spec = "all" then None
      else
        Some
          (List.filter_map Trace.category_of_string
             (String.split_on_char ',' spec))
    in
    (match categories with
    | None -> Trace.enable (L.Engine.trace sim.L.engine)
    | Some cats -> Trace.enable ~categories:cats (L.Engine.trace sim.L.engine))

let dump_trace sim = function
  | None -> ()
  | Some _ ->
    let tr = L.Engine.trace sim.L.engine in
    Fmt.pr "@.--- trace (most recent %d events%s) ---@."
      (List.length (Trace.events tr))
      (match Trace.dropped tr with
      | 0 -> ""
      | n -> Printf.sprintf ", %d older dropped" n);
    Fmt.pr "%a" Trace.dump tr

let sites_arg =
  Arg.(value & opt int 3 & info [ "sites" ] ~docv:"N" ~doc:"Number of sites.")

(* {1 bank} *)

let bank seed sites tellers transfers =
  let n_accounts = 32 and rec_len = 16 and initial = 1000 in
  let sim = L.make ~seed ~n_sites:sites () in
  let cl = sim.L.cluster in
  let read_bal env c a =
    int_of_string
      (String.trim (Bytes.to_string (Api.pread env c ~pos:(a * rec_len) ~len:rec_len)))
  in
  let write_bal env c a v =
    Api.pwrite env c ~pos:(a * rec_len)
      (Bytes.of_string (Printf.sprintf "%-*d" rec_len v))
  in
  let total = ref 0 in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
         let c = Api.creat env "/bank/accounts" ~vid:1 in
         for a = 0 to n_accounts - 1 do
           write_bal env c a initial
         done;
         Api.close env c;
         let teller i =
           Api.fork env ~site:(i mod sites) ~name:(Printf.sprintf "teller%d" i)
             (fun tenv ->
               let prng = Prng.create ~seed:(seed + i) in
               let c = Api.open_file tenv "/bank/accounts" in
               for _ = 1 to transfers do
                 let from_a = Prng.int prng n_accounts in
                 let to_a = Prng.int prng n_accounts in
                 let amount = 1 + Prng.int prng 200 in
                 let rec attempt tries =
                   let ok = ref false in
                   let w =
                     Api.fork tenv ~name:"xfer" (fun env ->
                         Api.begin_trans env;
                         Api.seek env c ~pos:(from_a * rec_len);
                         (match Api.lock env c ~len:rec_len ~mode:M.Exclusive () with
                         | Api.Granted -> ()
                         | Api.Conflict _ -> ());
                         if to_a <> from_a then begin
                           Api.seek env c ~pos:(to_a * rec_len);
                           match Api.lock env c ~len:rec_len ~mode:M.Exclusive () with
                           | Api.Granted -> ()
                           | Api.Conflict _ -> ()
                         end;
                         let src = read_bal env c from_a in
                         if src >= amount && to_a <> from_a then begin
                           write_bal env c from_a (src - amount);
                           write_bal env c to_a (read_bal env c to_a + amount)
                         end;
                         match Api.end_trans env with
                         | K.Committed -> ok := true
                         | K.Aborted -> ())
                   in
                   Api.wait_pid tenv w;
                   if (not !ok) && tries < 5 then attempt (tries + 1)
                 in
                 attempt 0
               done;
               Api.close tenv c)
         in
         let pids = List.init tellers teller in
         List.iter (Api.wait_pid env) pids;
         let c = Api.open_file env "/bank/accounts" in
         for a = 0 to n_accounts - 1 do
           total := !total + read_bal env c a
         done;
         Api.close env c));
  L.run sim;
  Fmt.pr "final total: %d (expected %d) -> %s@." !total (n_accounts * initial)
    (if !total = n_accounts * initial then "CONSERVED" else "VIOLATION");
  print_summary sim;
  if !total <> n_accounts * initial then exit 1

let bank_cmd =
  let tellers =
    Arg.(value & opt int 8 & info [ "tellers" ] ~docv:"N" ~doc:"Teller processes.")
  in
  let transfers =
    Arg.(value & opt int 6 & info [ "transfers" ] ~docv:"N" ~doc:"Transfers per teller.")
  in
  Cmd.v
    (Cmd.info "bank" ~doc:"Concurrent bank transfers with record locking.")
    Term.(const bank $ seed_arg $ sites_arg $ tellers $ transfers)

(* {1 chaos} *)

let chaos seed sites orders crash_at =
  let sim = L.make ~seed ~n_sites:(max sites 3) () in
  let cl = sim.L.cluster in
  let placed = ref 0 and failed = ref 0 in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ ->
         Engine.sleep (int_of_float (crash_at *. 1_000_000.));
         Fmt.pr "!! crashing site 1@.";
         K.crash_site cl 1;
         Engine.sleep 2_000_000;
         Fmt.pr "!! rebooting site 1@.";
         K.restart_site cl 1));
  ignore
    (Api.spawn_process cl ~site:0 ~name:"shop" (fun env ->
         let sc = Api.creat env "/stock" ~vid:1 in
         Api.pwrite env sc ~pos:0 (Bytes.of_string (Printf.sprintf "%-16d" 10_000));
         Api.close env sc;
         let oc = Api.creat env "/orders" ~vid:2 in
         Api.close env oc;
         for n = 1 to orders do
           let ok = ref false in
           let runner =
             Api.fork env ~name:"order" (fun oenv ->
                 Api.begin_trans oenv;
                 let sc = Api.open_file oenv "/stock" in
                 Api.seek oenv sc ~pos:0;
                 (match Api.lock oenv sc ~len:16 ~mode:M.Exclusive () with
                 | Api.Granted -> ()
                 | Api.Conflict _ -> Api.fail oenv "lock");
                 let have =
                   int_of_string
                     (String.trim (Bytes.to_string (Api.pread oenv sc ~pos:0 ~len:16)))
                 in
                 Api.pwrite oenv sc ~pos:0
                   (Bytes.of_string (Printf.sprintf "%-16d" (have - 5)));
                 let oc = Api.open_file oenv "/orders" in
                 Api.set_append oenv oc true;
                 (match Api.lock oenv oc ~len:32 ~mode:M.Exclusive () with
                 | Api.Granted -> ()
                 | Api.Conflict _ -> Api.fail oenv "append lock");
                 Api.write_string oenv oc
                   (Printf.sprintf "%-32s" (Printf.sprintf "order=%d qty=5" n));
                 match Api.end_trans oenv with
                 | K.Committed -> ok := true
                 | K.Aborted -> ())
           in
           Api.wait_pid env runner;
           if !ok then incr placed else incr failed;
           Engine.sleep 300_000
         done));
  L.run sim;
  let stock =
    match K.lookup cl "/stock" with
    | Some fid ->
      int_of_string (String.trim (K.read_committed_oracle cl fid))
    | None -> -1
  in
  let orders_bytes =
    match K.lookup cl "/orders" with
    | Some fid -> String.length (K.read_committed_oracle cl fid)
    | None -> 0
  in
  Fmt.pr "placed=%d failed=%d stock=%d orders=%d@." !placed !failed stock
    (orders_bytes / 32);
  Fmt.pr "atomicity: %s@."
    (if 10_000 - stock = 5 * (orders_bytes / 32) then "PRESERVED" else "VIOLATED");
  print_summary sim;
  if 10_000 - stock <> 5 * (orders_bytes / 32) then exit 1

let chaos_cmd =
  let orders =
    Arg.(value & opt int 15 & info [ "orders" ] ~docv:"N" ~doc:"Orders to place.")
  in
  let crash_at =
    Arg.(
      value & opt float 2.5
      & info [ "crash-at" ] ~docv:"SECONDS" ~doc:"When to crash site 1 (virtual).")
  in
  Cmd.v
    (Cmd.info "chaos" ~doc:"Multi-site transactions with a mid-run crash+reboot.")
    Term.(const chaos $ seed_arg $ sites_arg $ orders $ crash_at)

(* {1 deadlock} *)

let deadlock seed sites cycle trace expect_resolved =
  let sim = L.make ~seed ~n_sites:sites () in
  setup_trace sim trace;
  ignore
    (Api.spawn_process sim.L.cluster ~site:0 ~name:"main" (fun env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c (String.make (64 * cycle) 'i');
         Api.commit_file env c;
         (* Spread the cycle across sites so the wait-for edges the
            detector must assemble are genuinely distributed (§3.1). *)
         let worker i =
           Api.fork env ~site:(i mod sites) ~name:(Printf.sprintf "d%d" i)
             (fun w ->
               Api.begin_trans w;
               Api.seek w c ~pos:(i * 64);
               (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               (* Hold long enough that every worker — including ones
                  forked to remote sites, which pay migration + path
                  lookup latency first — owns its first record before
                  anyone asks for its second, so the cycle closes. *)
               Engine.sleep 500_000;
               Api.seek w c ~pos:(64 * ((i + 1) mod cycle));
               (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               ignore (Api.end_trans w))
         in
         let pids = List.init cycle worker in
         List.iter (Api.wait_pid env) pids));
  L.run sim;
  print_summary sim;
  Fmt.pr "@.--- kernel state (§3.1 interface) ---@.";
  Fmt.pr "%a" Locus_core.Kinfo.pp (Locus_core.Kinfo.snapshot sim.L.cluster);
  dump_trace sim trace;
  if expect_resolved then begin
    let stats = L.Engine.stats sim.L.engine in
    let get k = L.Stats.get stats k in
    let check name cond =
      Fmt.pr "expect %-28s %s@." name (if cond then "ok" else "FAILED");
      cond
    in
    let ok =
      List.for_all Fun.id
        [
          check "deadlock.victims >= 1" (get "deadlock.victims" >= 1);
          check "txn.abort.deadlock >= 1" (get "txn.abort.deadlock" >= 1);
          check "txn.committed >= 1" (get "txn.committed" >= 1);
          check "no survivors stuck"
            (K.active_transactions sim.L.cluster = []);
        ]
    in
    if not ok then exit 1
  end

let deadlock_cmd =
  let cycle =
    Arg.(value & opt int 4 & info [ "cycle" ] ~docv:"N" ~doc:"Deadlock cycle size.")
  in
  let expect_resolved =
    Arg.(
      value & flag
      & info [ "expect-resolved" ]
          ~doc:
            "Self-test mode: exit non-zero unless the detector picked at \
             least one victim (deadlock.victims, txn.abort.deadlock), at \
             least one survivor committed, and no transaction is left \
             active.")
  in
  Cmd.v
    (Cmd.info "deadlock" ~doc:"Induce an N-cycle deadlock and watch the resolver.")
    Term.(
      const deadlock $ seed_arg $ sites_arg $ cycle $ trace_arg $ expect_resolved)

(* {1 dc: the DebitCredit workload} *)

let dc seed sites terminals txns =
  let sites = max sites 2 in
  let sim = L.make ~seed ~n_sites:sites () in
  let cl = sim.L.cluster in
  let rec_len = 16 in
  let n_accounts = 64 and n_tellers = 8 and n_branches = 2 in
  let committed = ref 0 and t_start = ref 0 and t_end = ref 0 in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
         let mk path vid n =
           let c = Api.creat env path ~vid in
           for i = 0 to n - 1 do
             Api.pwrite env c ~pos:(i * rec_len)
               (Bytes.of_string (Printf.sprintf "%-*d" rec_len 0))
           done;
           Api.close env c
         in
         mk "/dc/accounts" 1 n_accounts;
         mk "/dc/tellers" (min 2 (sites - 1)) n_tellers;
         mk "/dc/branches" 0 n_branches;
         let h = Api.creat env "/dc/history" ~vid:0 in
         Api.close env h;
         let e = K.engine cl in
         t_start := Engine.now e;
         let terminal t =
           Api.fork env ~site:(t mod sites) ~name:(Printf.sprintf "term%d" t)
             (fun tenv ->
               let prng = Prng.create ~seed:(seed + t) in
               let chans =
                 List.map (Api.open_file tenv)
                   [ "/dc/accounts"; "/dc/tellers"; "/dc/branches"; "/dc/history" ]
               in
               match chans with
               | [ ac; tc; bc; hc ] ->
                 for _ = 1 to txns do
                   let acct = Prng.int prng n_accounts in
                   let teller = Prng.int prng n_tellers in
                   let branch = teller mod n_branches in
                   let delta = Prng.int_in prng ~lo:(-99) ~hi:99 in
                   let w =
                     Api.fork tenv ~name:"dc" (fun w ->
                         Api.begin_trans w;
                         let upd c i =
                           Api.seek w c ~pos:(i * rec_len);
                           (match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
                           | Api.Granted -> ()
                           | Api.Conflict _ -> ());
                           let v =
                             int_of_string
                               (String.trim
                                  (Bytes.to_string
                                     (Api.pread w c ~pos:(i * rec_len) ~len:rec_len)))
                           in
                           Api.pwrite w c ~pos:(i * rec_len)
                             (Bytes.of_string (Printf.sprintf "%-*d" rec_len (v + delta)))
                         in
                         upd ac acct;
                         upd tc teller;
                         upd bc branch;
                         Api.set_append w hc true;
                         (match Api.lock w hc ~len:32 ~mode:M.Exclusive () with
                         | Api.Granted -> ()
                         | Api.Conflict _ -> ());
                         Api.write_string w hc (Printf.sprintf "%-32d" delta);
                         match Api.end_trans w with
                         | K.Committed -> incr committed
                         | K.Aborted -> ())
                   in
                   Api.wait_pid tenv w
                 done;
                 List.iter (Api.close tenv) chans
               | _ -> assert false)
         in
         let pids = List.init terminals terminal in
         List.iter (Api.wait_pid env) pids;
         t_end := Engine.now e));
  L.run sim;
  let secs = float_of_int (!t_end - !t_start) /. 1_000_000. in
  Fmt.pr "DebitCredit: %d committed in %.2f virtual seconds = %.1f tps@."
    !committed secs
    (float_of_int !committed /. secs);
  print_summary sim

let dc_cmd =
  let terminals =
    Arg.(value & opt int 8 & info [ "terminals" ] ~docv:"N" ~doc:"Terminals.")
  in
  let txns =
    Arg.(value & opt int 5 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per terminal.")
  in
  Cmd.v
    (Cmd.info "dc" ~doc:"DebitCredit (TPC-A style) throughput run.")
    Term.(const dc $ seed_arg $ sites_arg $ terminals $ txns)

(* {1 check / explore: the Locus_check harness} *)

module Ck = Locus_check

let check_config ?(health_window = 0) ?arrival sites txns ops records replicas
    batch_window fault_every commit shards policy net_faults =
  {
    Ck.Explore.sites = max 2 sites;
    txns;
    ops;
    records;
    replicas = max 1 replicas;
    batch_window = max 0 batch_window;
    fault_every;
    commit;
    shards = max 0 shards;
    policy;
    net_faults;
    health_window = max 0 health_window;
    arrival;
  }

let txns_arg =
  Arg.(value & opt int 4 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per workload.")

let ops_arg =
  Arg.(value & opt int 4 & info [ "ops" ] ~docv:"N" ~doc:"Operations per transaction.")

let records_arg =
  Arg.(value & opt int 4 & info [ "records" ] ~docv:"N" ~doc:"Shared records.")

let fault_every_arg =
  Arg.(
    value & opt (some int) None
    & info [ "fault-every"; "crash-every" ] ~docv:"K"
        ~doc:
          "Inject a fault on every K-th seed, alternating site crash + \
           reboot with network partition + heal.")

let replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Copies per volume (>1 enables primary-copy replication with \
           commit propagation).")

let batch_window_arg =
  Arg.(
    value & opt int 0
    & info [ "batch-window" ] ~docv:"US"
        ~doc:
          "Commit-path batching window in virtual microseconds (0 = off): \
           enables group commit, RPC coalescing and piggybacked \
           transactional reads for every checked run.")

let commit_arg =
  Arg.(
    value
    & opt (enum [ ("two_phase", `Two_phase); ("paxos", `Paxos) ]) `Two_phase
    & info [ "commit" ] ~docv:"PROTO"
        ~doc:
          "Atomic-commitment protocol: $(b,two_phase) (default) or \
           $(b,paxos). Under paxos the fault rotation adds permanent \
           coordinator kills and every run is additionally checked for \
           liveness (no participant may end the run blocked in-doubt).")

let paxos_f_arg =
  Arg.(
    value & opt int 1
    & info [ "paxos-f" ] ~docv:"F"
        ~doc:
          "Faults tolerated by Paxos Commit: 2F+1 acceptor sites per \
           transaction (requires --sites >= 2F+1). Only meaningful with \
           --commit paxos.")

let commit_of proto paxos_f : Ck.Workload.commit_protocol =
  match proto with `Two_phase -> `Two_phase | `Paxos -> `Paxos (max 0 paxos_f)

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Enable dynamic lock placement with N directory shards (0 = \
           static placement): lock traffic routes through the shard \
           directory and the lock-manager role migrates toward the \
           traffic per --migrate-policy.")

let policy_conv =
  let parse s =
    match Locus_shard.Policy.of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Locus_shard.Policy.pp)

let migrate_policy_arg =
  Arg.(
    value & opt policy_conv Locus_shard.Policy.default
    & info [ "migrate-policy" ] ~docv:"POLICY"
        ~doc:
          "Migration policy for --shards runs: $(b,never), \
           $(b,threshold:N) (migrate after N consecutive remote \
           acquisitions from one site), or a bare N.")

(* "drop=0.05,dup=0.05,reorder=4,jitter=500" -> Transport.faults; every
   key is optional, unknown keys are errors. *)
let net_faults_conv =
  let parse s =
    let open Locus_net.Transport in
    try
      Ok
        (List.fold_left
           (fun f kv ->
             match String.split_on_char '=' kv with
             | [ "drop"; v ] -> { f with drop = float_of_string v }
             | [ "dup"; v ] -> { f with dup = float_of_string v }
             | [ "reorder"; v ] -> { f with reorder = int_of_string v }
             | [ "jitter"; v ] | [ "jitter_us"; v ] ->
               { f with jitter_us = int_of_string v }
             | _ -> failwith kv)
           no_faults
           (String.split_on_char ',' (String.trim s)))
    with Failure _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad --net-faults %S (want e.g. drop=0.05,dup=0.05,reorder=4)" s))
  in
  let print ppf (f : Locus_net.Transport.faults) =
    Fmt.pf ppf "drop=%g,dup=%g,reorder=%d,jitter=%d" f.drop f.dup f.reorder
      f.jitter_us
  in
  Arg.conv (parse, print)

let net_faults_arg =
  Arg.(
    value & opt (some net_faults_conv) None
    & info [ "net-faults" ] ~docv:"SPEC"
        ~doc:
          "Arm the lossy-network chaos layer for every checked run: \
           $(docv) is a comma list of $(b,drop)=P (loss probability), \
           $(b,dup)=P (duplication probability), $(b,reorder)=N (reorder \
           window in one-way latencies) and $(b,jitter)=US (extra delay \
           bound, virtual µs). Deterministic per seed. Client RPCs switch \
           to retried, rid-tagged sends deduplicated by server reply \
           caches; the checker's duplicate-apply oracle watches every \
           execution.")

let pp_blocked =
  Fmt.list ~sep:Fmt.sp (fun ppf (site, txid) ->
      Fmt.pf ppf "site%d:%a" site Txid.pp txid)

let arrival_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "arrival" ] ~docv:"RATE"
        ~doc:
          "Open-loop workload generation: transactions carry Poisson \
           arrival instants at $(docv)/sec and draw records from a \
           Zipfian popularity law, and the driver releases each at its \
           instant instead of forking everything at once. Default: the \
           classic closed-loop generator.")

let check seed sites txns ops records replicas batch_window fault_every commit
    paxos_f shards policy net_faults arrival =
  let cfg =
    check_config ?arrival sites txns ops records replicas batch_window
      fault_every (commit_of commit paxos_f) shards policy net_faults
  in
  let spec, hist, report, blocked = Ck.Explore.run_seed cfg seed in
  Fmt.pr "workload (seed %d):@.%a@." seed Ck.Workload.pp spec;
  Fmt.pr "@.history: %d events@." (Ck.History.length hist);
  Fmt.pr "%a@." Ck.Checker.pp report;
  (match blocked with
  | [] -> ()
  | bs -> Fmt.pr "BLOCKED in-doubt participants: %a@." pp_blocked bs);
  if (not (Ck.Checker.ok report)) || blocked <> [] then exit 1

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run one generated workload and check its history for serializability.")
    Term.(
      const check $ seed_arg $ sites_arg $ txns_arg $ ops_arg $ records_arg
      $ replicas_arg $ batch_window_arg $ fault_every_arg $ commit_arg
      $ paxos_f_arg $ shards_arg $ migrate_policy_arg $ net_faults_arg
      $ arrival_arg)

let explore seed sites txns ops records replicas batch_window fault_every
    n_seeds break_locks break_repl break_paxos break_shard break_dedup
    break_health commit paxos_f shards policy net_faults health_window arrival =
  let cfg =
    check_config ~health_window ?arrival sites txns ops records replicas
      batch_window fault_every (commit_of commit paxos_f) shards policy
      net_faults
  in
  if break_locks then begin
    Fmt.pr "!! breaking the shared/exclusive compatibility rule (Figure 1)@.";
    M.test_break_shared_exclusive := true
  end;
  if break_repl then begin
    Fmt.pr
      "!! breaking commit propagation (secondaries silently stop receiving \
       updates)@.";
    Locus_repl.Flags.drop_propagation := true
  end;
  if break_paxos then begin
    Fmt.pr
      "!! breaking Paxos Commit acceptors (votes acknowledged but never \
       registered or persisted)@.";
    Locus_pcommit.Flags.break_paxos := true
  end;
  if break_shard then begin
    Fmt.pr
      "!! breaking shard migration (old owners keep granting at stale \
       epochs after handing the role away)@.";
    Locus_shard.Flags.break_shard := true
  end;
  if break_dedup then begin
    Fmt.pr
      "!! breaking exactly-once RPC (servers skip the reply cache and \
       re-run every retried or duplicated request)@.";
    Locus_net.Flags.break_dedup := true
  end;
  if break_health then begin
    Fmt.pr
      "!! breaking the health watchdog (threshold rules evaluated never, \
       alarms raised never)@.";
    Locus_health.Flags.break_health := true
  end;
  Fun.protect ~finally:(fun () ->
      M.test_break_shared_exclusive := false;
      Locus_repl.Flags.drop_propagation := false;
      Locus_pcommit.Flags.break_paxos := false;
      Locus_shard.Flags.break_shard := false;
      Locus_net.Flags.break_dedup := false;
      Locus_health.Flags.break_health := false)
  @@ fun () ->
  let t0 = Sys.time () in
  let result =
    Ck.Explore.sweep ~config:cfg ~seeds:(Ck.Explore.seeds ~n:n_seeds ~from:seed) ()
  in
  let dt = Sys.time () -. t0 in
  Fmt.pr
    "checked %d schedules (%d events) in %.2fs cpu = %.1f schedules/s@."
    result.Ck.Explore.checked result.Ck.Explore.events dt
    (float_of_int result.Ck.Explore.checked /. Float.max dt 1e-9);
  Fmt.pr "permitted (§3.4) violations: %d@." result.Ck.Explore.permitted;
  match result.Ck.Explore.failures with
  | [] ->
    Fmt.pr "no unpermitted serializability violations, no blocked participants.@."
  | f :: _ as fs ->
    Fmt.pr "@.%d FAILING SEED(S): %a@." (List.length fs)
      (Fmt.list ~sep:Fmt.sp Fmt.int)
      (List.map (fun f -> f.Ck.Explore.f_seed) fs);
    Fmt.pr "@.first failure (seed %d):@.%a@." f.Ck.Explore.f_seed
      Ck.Checker.pp f.Ck.Explore.f_report;
    (match f.Ck.Explore.f_blocked with
    | [] -> ()
    | bs ->
      Fmt.pr "LIVENESS: participants ended the run blocked in-doubt: %a@."
        pp_blocked bs);
    List.iter (fun v -> Fmt.pr "HEALTH: %s@." v) f.Ck.Explore.f_health;
    let small = Ck.Explore.shrink_failure cfg f in
    Fmt.pr "@.shrunk reproducer (%d txns):@.%a@."
      (List.length small.Ck.Workload.txns)
      Ck.Workload.pp small;
    exit 1

let explore_cmd =
  let n_seeds =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds to sweep.")
  in
  let break_locks =
    Arg.(
      value & flag
      & info [ "break-locks" ]
          ~doc:
            "Self-test: break the lock compatibility matrix and verify the \
             checker catches the resulting violations.")
  in
  let break_repl =
    Arg.(
      value & flag
      & info [ "break-repl" ]
          ~doc:
            "Self-test: drop commit propagation to secondary copies and \
             verify the checker flags the resulting stale reads (use with \
             --replicas >= 2).")
  in
  let break_paxos =
    Arg.(
      value & flag
      & info [ "break-paxos" ]
          ~doc:
            "Self-test: acceptors acknowledge Paxos Commit votes without \
             registering or persisting them, so decisions become unlearnable \
             after a coordinator kill; verify the liveness check flags the \
             blocked participants (use with --commit paxos).")
  in
  let break_shard =
    Arg.(
      value & flag
      & info [ "break-shard" ]
          ~doc:
            "Self-test: migrating owners skip the stand-down — they keep \
             their table and keep granting at the stale epoch after the \
             role moved; verify the epoch-fence oracle flags the resulting \
             split-brain grants (use with --shards > 0).")
  in
  let break_dedup =
    Arg.(
      value & flag
      & info [ "break-dedup" ]
          ~doc:
            "Self-test: servers bypass the exactly-once reply cache, so a \
             retried or duplicated non-idempotent request re-executes; \
             verify the duplicate-apply oracle flags the double \
             applications (use with --net-faults).")
  in
  let break_health =
    Arg.(
      value & flag
      & info [ "break-health" ]
          ~doc:
            "Self-test: mute the health watchdog (threshold rules never \
             evaluated, alarms never raised) and verify the alarm-liveness \
             oracle flags the runs that blocked in-doubt without an alarm \
             (use with --health and --fault-every).")
  in
  let health_window =
    Arg.(
      value & opt ~vopt:100_000 int 0
      & info [ "health" ] ~docv:"US"
          ~doc:
            "Arm the locus_health plane at this sampling window (virtual \
             µs; bare $(b,--health) = 100 ms) and run the health oracles: \
             fault-free seeds must raise no alarm, and — the fault \
             rotation then including coordinator kills even under 2PC — \
             seeds that end blocked in-doubt must have raised \
             $(b,in_doubt_age).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sweep many seeds, checking every schedule for serializability; on \
          failure, shrink the workload to a minimal reproducer.")
    Term.(
      const explore $ seed_arg $ sites_arg $ txns_arg $ ops_arg $ records_arg
      $ replicas_arg $ batch_window_arg $ fault_every_arg $ n_seeds
      $ break_locks $ break_repl $ break_paxos $ break_shard $ break_dedup
      $ break_health $ commit_arg $ paxos_f_arg $ shards_arg
      $ migrate_policy_arg $ net_faults_arg $ health_window $ arrival_arg)

(* {1 repl-status} *)

let print_replica_status cl =
  Fmt.pr "@.--- replica status ---@.";
  List.iter
    (fun v ->
      Fmt.pr "vol%d  primary: site %d@." v.K.rv_vid v.K.rv_primary;
      List.iter
        (fun h ->
          Fmt.pr "  site %d: %s%s%s  versions [%s]@." h.K.rh_site
            (if h.K.rh_alive then "up" else "DOWN")
            (if h.K.rh_primary then ", primary" else "")
            (if h.K.rh_fresh then ", fresh" else ", DEGRADED")
            (String.concat "; "
               (List.map
                  (fun (ino, ver) -> Printf.sprintf "ino%d=v%d" ino ver)
                  h.K.rh_versions)))
        v.K.rv_hosts)
    (K.replica_status cl)

let repl_status seed sites replicas updates crash_primary =
  let sites = max 2 sites in
  let replicas = max 1 replicas in
  let config = K.Config.with_replication ~n_sites:sites ~factor:replicas in
  let sim = L.make ~seed ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"repl-driver" (fun env ->
         let c = Api.creat env "/repl/demo" ~vid:1 in
         for i = 1 to updates do
           Api.pwrite env c ~pos:0
             (Bytes.of_string (Printf.sprintf "update %04d" i));
           Api.commit_file env c
         done;
         Api.close env c;
         if crash_primary then begin
           let fid = Option.get (K.lookup cl "/repl/demo") in
           let p = K.storage_site cl fid in
           if p <> 0 then begin
             Fmt.pr "crashing primary site %d of /repl/demo@." p;
             K.crash_site cl p
           end
         end));
  L.run sim;
  Fmt.pr "wrote %d committed updates to /repl/demo (vol1)@." updates;
  print_replica_status cl;
  print_summary sim

let repl_status_cmd =
  let updates =
    Arg.(
      value & opt int 5
      & info [ "updates" ] ~docv:"N"
          ~doc:"Committed updates to write before reporting.")
  in
  let crash_primary =
    Arg.(
      value & flag
      & info [ "crash-primary" ]
          ~doc:
            "Crash the demo file's primary site after the updates commit, \
             to show failover state.")
  in
  Cmd.v
    (Cmd.info "repl-status"
       ~doc:
         "Run a short replicated workload and print each volume's replica \
          set: current primary, per-host liveness / freshness and committed \
          file versions.")
    Term.(
      const repl_status $ seed_arg $ sites_arg $ replicas_arg $ updates
      $ crash_primary)

(* {1 shard-status} *)

let shard_status seed sites shards policy files rounds =
  let sites = max 2 sites in
  let shards = if shards <= 0 then sites else shards in
  let config =
    K.Config.with_shards ~shards ~policy (K.Config.default ~n_sites:sites)
  in
  let sim = L.make ~seed ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  let files = max 1 files in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"shard-driver" (fun env ->
         let paths = List.init files (Printf.sprintf "/shard/f%d") in
         List.iter
           (fun p ->
             let c = Api.creat env p ~vid:1 in
             Api.pwrite env c ~pos:0 (Bytes.make 64 '.');
             Api.commit_file env c;
             Api.close env c)
           paths;
         (* Each file gets a dominant remote site hammering it: the
            threshold policy should hand every role to its traffic. *)
         let pids =
           List.mapi
             (fun i p ->
               let site = (i + 1) mod sites in
               Api.fork env ~site ~name:(Printf.sprintf "shard-w%d" i)
                 (fun w ->
                   let c = Api.open_file w p in
                   for _ = 1 to rounds do
                     Api.seek w c ~pos:0;
                     (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
                     | Api.Granted -> ()
                     | Api.Conflict _ -> ());
                     Api.unlock w c ~len:64;
                     Engine.sleep 10_000
                   done;
                   Api.close w c))
             paths
         in
         List.iter (Api.wait_pid env) pids));
  L.run sim;
  Fmt.pr "--- shard directory (%d shards over %d sites) ---@." shards sites;
  List.iter
    (fun (fid, path, owner, epoch) ->
      Fmt.pr "%-16s %a  owner site%d  epoch %d@."
        (match path with Some p -> p | None -> "?")
        File_id.pp fid owner epoch)
    (K.shard_status cl);
  let stats = L.Engine.stats sim.L.engine in
  Fmt.pr "@.--- shard counters ---@.";
  List.iter
    (fun key ->
      let v = L.Stats.get stats key in
      if v > 0 then Fmt.pr "%-24s %d@." key v)
    [
      "shard.local_grants"; "shard.remote_grants"; "shard.redirects";
      "shard.forwards"; "shard.migrations"; "shard.installs"; "shard.fenced";
      "shard.rehomed"; "shard.transfer_lost"; "shard.dir_lookups";
      "shard.dir_claims"; "shard.dir_claim_stale";
    ];
  print_summary sim

let shard_status_cmd =
  let files =
    Arg.(
      value & opt int 4
      & info [ "files" ] ~docv:"N" ~doc:"Hot files to create (on vol 1).")
  in
  let rounds =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~docv:"N"
          ~doc:"Lock/unlock rounds per file from its dominant site.")
  in
  Cmd.v
    (Cmd.info "shard-status"
       ~doc:
         "Run a short sharded workload (each file hammered from one remote \
          site) and print the shard directory — who owns each file's \
          lock-manager role, at what epoch — plus the migration counters.")
    Term.(
      const shard_status $ seed_arg $ sites_arg $ shards_arg
      $ migrate_policy_arg $ files $ rounds)

(* {1 trace-export / metrics: causal span tracing} *)

(* A small deterministic distributed scenario built to exercise every span
   kind: two volumes replicated across sites 1/2 (factor 2), two workers at
   site 0 whose transactions contend on the same record so the second one
   blocks (lock.wait), commit through distributed 2PC (prepare / votes /
   commit force / phase-2 apply / replica propagation / lock release). *)
let span_workload seed =
  let sites = 3 in
  let config = K.Config.with_replication ~n_sites:sites ~factor:2 in
  let sim = L.make ~seed ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  let otr = L.Otrace.create (K.engine cl) in
  K.set_otracer cl (Some otr);
  ignore
    (Api.spawn_process cl ~site:0 ~name:"span-setup" (fun env ->
         let mk path vid =
           let c = Api.creat env path ~vid in
           Api.pwrite env c ~pos:0 (Bytes.make 128 '.');
           Api.commit_file env c;
           Api.close env c
         in
         mk "/span/a" 1;
         mk "/span/b" 2;
         let worker i delay =
           Api.fork env ~site:0 ~name:(Printf.sprintf "span-w%d" i) (fun w ->
               Engine.sleep delay;
               Api.begin_trans w;
               let update path v =
                 let c = Api.open_file w path in
                 Api.seek w c ~pos:0;
                 (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
                 | Api.Granted -> ()
                 | Api.Conflict _ -> ());
                 Api.pwrite w c ~pos:0
                   (Bytes.of_string (Printf.sprintf "%-64d" v));
                 c
               in
               let ca = update "/span/a" i in
               let cb = update "/span/b" (i * 7) in
               Engine.sleep 5_000;
               ignore (Api.end_trans w);
               Api.close w ca;
               Api.close w cb)
         in
         let w1 = worker 1 0 in
         let w2 = worker 2 20_000 in
         Api.wait_pid env w1;
         Api.wait_pid env w2));
  L.run sim;
  (sim, otr)

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Write the JSON to FILE instead of stdout.")

let with_out out f =
  match out with
  | None -> f Fmt.stdout
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        let ppf = Format.formatter_of_out_channel oc in
        f ppf;
        Format.pp_print_flush ppf ())

let trace_export seed out =
  let sim, otr = span_workload seed in
  with_out out (fun ppf ->
      L.Otrace.export_chrome ~extra:[ ("seed", string_of_int seed) ] otr ppf);
  Fmt.epr "trace-export: %d spans (%d dropped), virtual time %.2f s@."
    (L.Otrace.span_count otr) (L.Otrace.dropped otr)
    (float_of_int (L.Engine.now sim.L.engine) /. 1_000_000.)

let trace_export_cmd =
  Cmd.v
    (Cmd.info "trace-export"
       ~doc:
         "Run a deterministic distributed transaction scenario with the span \
          collector installed and export the causal span trees as Chrome \
          trace-event JSON (chrome://tracing, Perfetto).")
    Term.(const trace_export $ seed_arg $ out_arg)

let metrics seed out =
  let sim, otr = span_workload seed in
  let stats = L.Engine.stats sim.L.engine in
  with_out out (fun ppf -> L.Otrace.export_metrics otr stats ppf);
  Fmt.epr "metrics: %d spans across %d phases@."
    (L.Otrace.span_count otr)
    (List.length (L.Otrace.phases otr))

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the trace-export scenario and emit machine-readable JSON \
          metrics: per-phase latency histograms, the lock-contention \
          profile, the abort-reason taxonomy, and all counters.")
    Term.(const metrics $ seed_arg $ out_arg)

(* {1 health / top: the live health plane} *)

module H = Locus_health

(* A deterministic scenario built to light the health plane up: four
   sites, replicated volumes, a mildly lossy network (RPC retries, reply
   caches filling), six workers contending on eight shared records — and,
   unless [kill] is off, a coordinator crashed right after its third
   durable decision, stranding its participants in-doubt. A monitor fiber
   at site 0 then polls every site: the dead one must come back as
   unreachable, and the watchdog must have raised [in_doubt_age]. *)
let health_workload ?(kill = true) ~window seed =
  let sites = 4 and rec_len = 16 and records = 8 in
  let config =
    K.Config.with_replication ~n_sites:sites ~factor:2
    |> K.Config.with_net_faults ~drop:0.02 ~dup:0.01 ~jitter_us:2_000
    |> K.Config.with_health ~window_us:window
  in
  let sim = L.make ~seed ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  let polls = ref [] in
  let schedule_poll delay =
    Engine.schedule ~delay (K.engine cl) (fun () ->
        ignore
          (Engine.spawn ~name:"health-monitor" ~site:0 (K.engine cl)
             (fun () -> polls := K.health_poll_all cl ~src:0)))
  in
  if kill then begin
    let decides = ref 0 in
    (K.hooks cl).K.on_decided <-
      (fun txid _status ->
        incr decides;
        if !decides = 3 then begin
          (* Keep the engine — and with it the windowed sampler — alive
             past the in-doubt age threshold, poll once the watchdog has
             had time to bark, then kill the coordinator. All scheduled
             first: this hook's own fiber dies with the site. *)
          Engine.schedule ~delay:3_500_000 (K.engine cl) (fun () -> ());
          schedule_poll 2_800_000;
          K.crash_site cl (Txid.site txid)
        end)
  end
  else schedule_poll 3_000_000;
  ignore
    (Api.spawn_process cl ~site:0 ~name:"health-setup" (fun env ->
         let c = Api.creat env "/health/acct" ~vid:1 in
         Api.pwrite env c ~pos:0 (Bytes.make (records * rec_len) '0');
         Api.commit_file env c;
         Api.close env c;
         let worker i =
           Api.fork env
             ~site:(1 + (i mod (sites - 1)))
             ~name:(Printf.sprintf "health-w%d" i)
             (fun w ->
               let prng = Prng.create ~seed:(seed + (31 * i)) in
               let c = Api.open_file w "/health/acct" in
               for _ = 1 to 3 do
                 Api.begin_trans w;
                 for _ = 1 to 2 do
                   let r = Prng.int prng records in
                   Api.seek w c ~pos:(r * rec_len);
                   (match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
                   | Api.Granted -> ()
                   | Api.Conflict _ -> ());
                   Api.pwrite w c ~pos:(r * rec_len)
                     (Bytes.of_string
                        (Printf.sprintf "%-*d" rec_len (Prng.int prng 1000)))
                 done;
                 ignore (Api.end_trans w);
                 Engine.sleep 25_000
               done;
               Api.close w c)
         in
         let pids = List.init 6 worker in
         List.iter (Api.wait_pid env) pids));
  L.run sim;
  (sim, !polls)

let window_arg =
  Arg.(
    value & opt int 100_000
    & info [ "window" ] ~docv:"US"
        ~doc:"Health sampling window in virtual µs.")

let no_kill_arg =
  Arg.(
    value & flag
    & info [ "no-kill" ]
        ~doc:
          "Skip the coordinator kill: a healthy chaotic run (no in-doubt \
           strandings, no unreachable site).")

let pp_alarm_line ppf (a : H.Rules.alarm) = Fmt.pf ppf "  %a" H.Rules.pp_alarm a

let pp_health_json cl polls ppf =
  let alarms = K.health_alarms cl in
  Fmt.pf ppf "{@[<v 1>@,\"at_us\": %d,@,\"window_us\": %d,@,\"windows\": %d,@,"
    (L.Engine.now (K.engine cl))
    (K.config cl).K.Config.health_window_us (K.health_windows cl);
  Fmt.pf ppf "\"sites\": [@[<v 1>@,%a@]@,],@,"
    (Fmt.list ~sep:(Fmt.any ",@,") H.Report.pp_poll_json)
    polls;
  Fmt.pf ppf "\"alarms\": [@[<v 1>@,%a@]@,],@,"
    (Fmt.list ~sep:(Fmt.any ",@,") (fun ppf (a : H.Rules.alarm) ->
         Fmt.pf ppf
           "{\"name\": %S, \"site\": %d, \"at_us\": %d, \"detail\": %S}"
           a.H.Rules.al_name a.H.Rules.al_site a.H.Rules.al_at_us
           a.H.Rules.al_detail))
    alarms;
  Fmt.pf ppf "\"active\": [@[<v 1>@,%a@]@,]@]@,}@."
    (Fmt.list ~sep:(Fmt.any ",@,") (fun ppf (site, rules) ->
         Fmt.pf ppf "{\"site\": %d, \"rules\": [%a]}" site
           (Fmt.list ~sep:(Fmt.any ", ") (fun ppf r -> Fmt.pf ppf "%S" r))
           rules))
    (K.health_active cl)

let dump_series cl path =
  Out_channel.with_open_text path (fun oc ->
      let ppf = Format.formatter_of_out_channel oc in
      H.Series.pp_list_json
        ~window_us:(K.config cl).K.Config.health_window_us
        ~windows:(K.health_windows cl) ppf (K.health_series cl);
      Format.pp_print_flush ppf ())

let health seed window no_kill out series_out =
  let sim, polls = health_workload ~kill:(not no_kill) ~window seed in
  let cl = sim.L.cluster in
  (match out with
  | Some _ -> with_out out (pp_health_json cl polls)
  | None ->
    Fmt.pr "locus health — %d sites, window %d us, %d windows, virtual %.2f s@."
      (K.config cl).K.Config.n_sites window (K.health_windows cl)
      (float_of_int (L.Engine.now (K.engine cl)) /. 1_000_000.);
    List.iter (fun p -> Fmt.pr "%a@." H.Report.pp_poll p) polls;
    (match K.health_alarms cl with
    | [] -> Fmt.pr "@.alarms: none@."
    | als ->
      Fmt.pr "@.alarms (%d):@." (List.length als);
      List.iter (fun a -> Fmt.pr "%a@." pp_alarm_line a) als));
  match series_out with None -> () | Some path -> dump_series cl path

let series_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "series-out" ] ~docv:"FILE"
        ~doc:"Also write the windowed time series as JSON to FILE.")

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run a deterministic chaotic scenario with the locus_health plane \
          armed, poll every site's health RPC, and print the structured \
          reports and watchdog alarms (JSON with --out; time series with \
          --series-out).")
    Term.(
      const health $ seed_arg $ window_arg $ no_kill_arg $ out_arg
      $ series_out_arg)

let top seed window no_kill =
  let sim, polls = health_workload ~kill:(not no_kill) ~window seed in
  let cl = sim.L.cluster in
  Fmt.pr "locus top — seed %d, %d sites, window %d us, %d windows, virtual %.2f s@."
    seed (K.config cl).K.Config.n_sites window (K.health_windows cl)
    (float_of_int (L.Engine.now (K.engine cl)) /. 1_000_000.);
  Fmt.pr "@.%-18s %8s %8s %10s  per-window@." "SERIES" "last" "peak" "total";
  List.iter
    (fun (name, s) ->
      let last =
        match H.Series.last s with None -> 0 | Some p -> p.H.Series.p_value
      in
      Fmt.pr "%-18s %8d %8d %10d  %s@." name last (H.Series.peak s)
        (H.Series.total s) (H.Series.spark s))
    (K.health_series cl);
  (match K.health_alarms cl with
  | [] -> Fmt.pr "@.alarms: none@."
  | als ->
    Fmt.pr "@.alarms (%d):@." (List.length als);
    List.iter (fun a -> Fmt.pr "%a@." pp_alarm_line a) als);
  (match K.health_active cl with
  | [] -> ()
  | act ->
    Fmt.pr "active now:%a@."
      (Fmt.list ~sep:Fmt.nop (fun ppf (site, rules) ->
           Fmt.pf ppf " %s:[%s]"
             (if site < 0 then "cluster" else Printf.sprintf "site%d" site)
             (String.concat " " rules)))
      act);
  Fmt.pr "@.SITES@.";
  List.iter (fun p -> Fmt.pr "%a@." H.Report.pp_poll p) polls

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the health scenario and render a one-shot operator dashboard: \
          every windowed series with a sparkline, the watchdog alarm log, \
          currently-latched conditions, and one status line per site.")
    Term.(const top $ seed_arg $ window_arg $ no_kill_arg)

(* {1 load} *)

module Ld = Locus_load

let pp_load_json (cfg : Ld.Driver.config) scenario_label (r : Ld.Driver.report) ppf =
  Fmt.pf ppf "{@[<v 1>@,";
  Fmt.pf ppf "\"seed\": %d,@," cfg.Ld.Driver.seed;
  Fmt.pf ppf "\"scenario\": %S,@," scenario_label;
  Fmt.pf ppf "\"sites\": %d,@," cfg.Ld.Driver.sites;
  Fmt.pf ppf "\"replicas\": %d,@," cfg.Ld.Driver.replicas;
  Fmt.pf ppf "\"duration_us\": %d,@," cfg.Ld.Driver.duration_us;
  Fmt.pf ppf "\"offered\": %d,@," r.Ld.Driver.offered;
  Fmt.pf ppf "\"completed\": %d,@," r.Ld.Driver.completed;
  Fmt.pf ppf "\"aborted\": %d,@," r.Ld.Driver.aborted;
  Fmt.pf ppf "\"shed\": %d,@," r.Ld.Driver.shed;
  Fmt.pf ppf "\"offered_per_sec\": %.2f,@," r.Ld.Driver.offered_per_sec;
  Fmt.pf ppf "\"completed_per_sec\": %.2f,@," r.Ld.Driver.completed_per_sec;
  Fmt.pf ppf "\"sojourn_p50_us\": %d,@," r.Ld.Driver.sojourn_p50_us;
  Fmt.pf ppf "\"sojourn_p99_us\": %d,@," r.Ld.Driver.sojourn_p99_us;
  Fmt.pf ppf "\"sojourn_p999_us\": %d,@," r.Ld.Driver.sojourn_p999_us;
  Fmt.pf ppf "\"aborts\": [@[<v 1>%a@]],@,"
    (Fmt.list ~sep:(Fmt.any ",@,") (fun ppf (reason, count) ->
         Fmt.pf ppf "{\"reason\": %S, \"count\": %d}" reason count))
    r.Ld.Driver.aborts;
  Fmt.pf ppf "\"events_fired\": %d,@," r.Ld.Driver.events_fired;
  Fmt.pf ppf "\"virtual_us\": %d@]@,}@." r.Ld.Driver.virtual_us

let load seed sites replicas duration scenario scenario_file rate out =
  let label, sc =
    match scenario_file with
    | Some path -> (
      let text = In_channel.with_open_text path In_channel.input_all in
      match Ld.Scenario.parse text with
      | Ok sc -> (Filename.basename path, sc)
      | Error e ->
        Fmt.epr "locusctl load: cannot parse %s: %s@." path e;
        exit 1)
    | None -> (
      match Ld.Scenario.builtin scenario with
      | Some sc -> (scenario, sc)
      | None ->
        Fmt.epr "locusctl load: unknown scenario %S (builtins: %s)@." scenario
          (String.concat ", " Ld.Scenario.builtin_names);
        exit 1)
  in
  let sc =
    match rate with
    | None -> sc
    | Some r ->
      {
        sc with
        Ld.Scenario.arrival = { sc.Ld.Scenario.arrival with Ld.Arrival.base_per_sec = r };
      }
  in
  let cfg =
    {
      Ld.Driver.sites;
      replicas;
      duration_us = duration;
      scenario = sc;
      seed;
    }
  in
  let report, sim = Ld.Driver.run cfg in
  match out with
  | Some _ -> with_out out (pp_load_json cfg label report)
  | None ->
    Fmt.pr "locus load — scenario %s, seed %d, %d sites%s, %.1f virtual s@." label
      seed sites
      (if replicas > 1 then Printf.sprintf " (x%d replicas)" replicas else "")
      (float_of_int duration /. 1e6);
    Fmt.pr "%a@." Ld.Scenario.pp sc;
    Fmt.pr "@.%a@." Ld.Driver.pp_report report;
    print_summary sim

let replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "replicas" ] ~docv:"N" ~doc:"Replication factor (1 = unreplicated).")

let duration_arg =
  Arg.(
    value & opt int 3_000_000
    & info [ "duration" ] ~docv:"US"
        ~doc:"Stop generating arrivals after this much virtual time (µs).")

let scenario_arg =
  Arg.(
    value & opt string "steady"
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          "Built-in scenario: steady, diurnal, flash, flash-partition, \
           rolling, or rebuild.")

let scenario_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "scenario-file" ] ~docv:"FILE"
        ~doc:
          "Parse the scenario from FILE (overrides --scenario; see HACKING.md \
           for the directive format).")

let rate_arg =
  Arg.(
    value & opt (some float) None
    & info [ "rate" ] ~docv:"PER_SEC"
        ~doc:"Override the scenario's base arrival rate (arrivals/second).")

let load_cmd =
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive open-loop traffic (Poisson arrivals, Zipfian keys, scripted \
          faults) at a simulated cluster and report offered vs completed \
          throughput, sojourn percentiles, and the abort taxonomy \
          (deterministic JSON with --out).")
    Term.(
      const load $ seed_arg $ sites_arg $ replicas_arg $ duration_arg
      $ scenario_arg $ scenario_file_arg $ rate_arg $ out_arg)

(* {1 stats} *)

let cluster_info _seed sites =
  let sim = L.make ~n_sites:sites () in
  let cl = sim.L.cluster in
  Fmt.pr "cluster: %d sites@." sites;
  List.iter
    (fun k ->
      let vols = Locus_fs.Filestore.volumes (K.filestore k) in
      Fmt.pr "site %d: volumes [%s]@." (K.site k)
        (String.concat ", "
           (List.map (fun v -> string_of_int (Locus_disk.Volume.vid v)) vols)))
    (K.kernels cl);
  let c = Costs.default in
  Fmt.pr "cost model: %d ns/instr, %d us one-way msg, %d us disk I/O@."
    c.Costs.instr_ns c.Costs.msg_latency_us c.Costs.disk_latency_us

let stats_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Describe the simulated cluster and cost model.")
    Term.(const cluster_info $ seed_arg $ sites_arg)

let () =
  let doc = "Scenario driver for the Locus transaction facility reproduction." in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "locusctl" ~version:"1.0" ~doc)
          [ bank_cmd; chaos_cmd; deadlock_cmd; dc_cmd; check_cmd; explore_cmd;
            repl_status_cmd; shard_status_cmd; trace_export_cmd; metrics_cmd;
            health_cmd; top_cmd; load_cmd; stats_cmd ]))
